#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/acg.h"
#include "core/engine.h"
#include "core/identify.h"
#include "keyword/engine.h"
#include "keyword/query_types.h"
#include "keyword/shared_executor.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/table.h"
#include "storage/value.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace nebula {
namespace {

// ===================================================================
// ExecuteGroup determinism: for every pool size the shared executor
// must produce byte-identical hits, scores, SharedExecutionStats, and
// engine ExecStats totals as the sequential (no-pool) path.
// ===================================================================

class ParallelSharedExecutionTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"name", DataType::kString, true}}));
    for (int i = 0; i < 26; ++i) {
      ASSERT_TRUE(gene_
                      ->Insert({Value(StrFormat("JW%04d", i)),
                                Value(StrFormat("ab%cX", 'a' + i))})
                      .ok());
    }
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    engine_ = std::make_unique<KeywordSearchEngine>(&catalog_, &meta_);
  }

  static std::vector<KeywordQuery> MakeGroup() {
    return {
        {{"gene", "JW0003"}, 1.0, "q0"},
        {{"gene", "JW0003"}, 0.8, "q1"},  // duplicate content, lower weight
        {{"gene", "abcX"}, 0.9, "q2"},
        {{"JW0007"}, 0.7, "q3"},
        {{"gene", "abdX"}, 0.6, "q4"},
        {{"JW0003"}, 0.5, "q5"},
    };
  }

  Catalog catalog_;
  NebulaMeta meta_;
  Table* gene_ = nullptr;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_P(ParallelSharedExecutionTest, IdenticalToSequentialExecution) {
  const auto queries = MakeGroup();

  // Baseline: sequential shared execution.
  engine_->ResetStats();
  SharedKeywordExecutor sequential(engine_.get());
  std::vector<std::vector<SearchHit>> expected;
  ASSERT_TRUE(sequential.ExecuteGroup(queries, &expected).ok());
  const SharedExecutionStats expected_shared = sequential.stats();
  const ExecStats expected_exec = engine_->stats();

  // Parallel run on a pool of GetParam() workers.
  ThreadPool pool(GetParam());
  engine_->ResetStats();
  SharedKeywordExecutor parallel(engine_.get(), &pool);
  std::vector<std::vector<SearchHit>> actual;
  ASSERT_TRUE(parallel.ExecuteGroup(queries, &actual).ok());

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t qi = 0; qi < expected.size(); ++qi) {
    ASSERT_EQ(actual[qi].size(), expected[qi].size()) << "query " << qi;
    for (size_t h = 0; h < expected[qi].size(); ++h) {
      EXPECT_EQ(actual[qi][h].tuple, expected[qi][h].tuple);
      // Bit-identical, not merely close: the parallel path runs the same
      // FP operations in the same order.
      EXPECT_EQ(actual[qi][h].confidence, expected[qi][h].confidence);
    }
  }
  EXPECT_EQ(parallel.stats().total_sql, expected_shared.total_sql);
  EXPECT_EQ(parallel.stats().distinct_sql, expected_shared.distinct_sql);
  EXPECT_DOUBLE_EQ(parallel.stats().sharing_ratio(),
                   expected_shared.sharing_ratio());
  EXPECT_EQ(engine_->stats().rows_examined, expected_exec.rows_examined);
  EXPECT_EQ(engine_->stats().index_lookups, expected_exec.index_lookups);
  EXPECT_EQ(engine_->stats().matches, expected_exec.matches);
}

TEST_P(ParallelSharedExecutionTest, StressRoundsStayDeterministic) {
  const auto queries = MakeGroup();
  SharedKeywordExecutor sequential(engine_.get());
  std::vector<std::vector<SearchHit>> expected;
  ASSERT_TRUE(sequential.ExecuteGroup(queries, &expected).ok());

  ThreadPool pool(GetParam());
  for (int round = 0; round < 25; ++round) {
    SharedKeywordExecutor parallel(engine_.get(), &pool);
    std::vector<std::vector<SearchHit>> actual;
    ASSERT_TRUE(parallel.ExecuteGroup(queries, &actual).ok());
    ASSERT_EQ(actual.size(), expected.size()) << "round " << round;
    for (size_t qi = 0; qi < expected.size(); ++qi) {
      ASSERT_EQ(actual[qi].size(), expected[qi].size());
      for (size_t h = 0; h < expected[qi].size(); ++h) {
        EXPECT_EQ(actual[qi][h].tuple, expected[qi][h].tuple);
        EXPECT_EQ(actual[qi][h].confidence, expected[qi][h].confidence);
      }
    }
  }
}

TEST_P(ParallelSharedExecutionTest, LazyIndexBuildRaceFree) {
  // First touch of the catalog happens *inside* the pool workers: the
  // concurrent statements race to lazily build the same hash indexes.
  // Under -DNEBULA_SANITIZE=thread this exercises the double-checked
  // locking in Table::GetOrBuildIndex.
  ThreadPool pool(GetParam());
  SharedKeywordExecutor parallel(engine_.get(), &pool);
  std::vector<std::vector<SearchHit>> hits;
  ASSERT_TRUE(parallel.ExecuteGroup(MakeGroup(), &hits).ok());

  SharedKeywordExecutor sequential(engine_.get());
  std::vector<std::vector<SearchHit>> expected;
  ASSERT_TRUE(sequential.ExecuteGroup(MakeGroup(), &expected).ok());
  ASSERT_EQ(hits.size(), expected.size());
  for (size_t qi = 0; qi < expected.size(); ++qi) {
    ASSERT_EQ(hits[qi].size(), expected[qi].size());
  }
}

TEST_P(ParallelSharedExecutionTest, IsolatedIdentifyMatchesSequential) {
  // The non-shared Stage-2 path parallelizes at whole-query granularity;
  // candidates must still match the sequential path exactly.
  const auto queries = MakeGroup();
  Acg acg;
  IdentifyParams params;
  params.shared_execution = false;

  TupleIdentifier sequential(engine_.get(), &acg, params);
  const auto expected = *sequential.Identify(queries, {});

  ThreadPool pool(GetParam());
  TupleIdentifier parallel(engine_.get(), &acg, params, &pool);
  const auto actual = *parallel.Identify(queries, {});

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].tuple, expected[i].tuple);
    EXPECT_EQ(actual[i].confidence, expected[i].confidence);
    EXPECT_EQ(actual[i].evidence, expected[i].evidence);
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelSharedExecutionTest,
                         ::testing::Values(1u, 2u, 8u));

// ===================================================================
// Batch ingest: InsertAnnotations must report the same per-annotation
// outcome as one-at-a-time InsertAnnotation, at every pool size.
// Each engine gets its own freshly generated (deterministic) dataset
// because ingestion mutates the store and the ACG.
// ===================================================================

class BatchIngestTest : public ::testing::TestWithParam<size_t> {};

std::vector<AnnotationRequest> MakeRequests(const BioDataset& ds,
                                            size_t count) {
  std::vector<AnnotationRequest> requests;
  for (size_t i = 0; i < ds.workload.annotations.size() && requests.size() < count;
       i += 5) {
    const WorkloadAnnotation& wa = ds.workload.annotations[i];
    if (wa.ideal_tuples.empty()) continue;
    requests.push_back({wa.text, {wa.ideal_tuples.front()}, "tester"});
  }
  return requests;
}

TEST_P(BatchIngestTest, BatchMatchesOneAtATime) {
  auto baseline_ds = GenerateBioDataset(DatasetSpec::Tiny());
  auto batch_ds = GenerateBioDataset(DatasetSpec::Tiny());
  ASSERT_TRUE(baseline_ds.ok());
  ASSERT_TRUE(batch_ds.ok());

  NebulaConfig config;
  NebulaEngine sequential(&(*baseline_ds)->catalog, &(*baseline_ds)->store,
                          &(*baseline_ds)->meta, config);
  sequential.RebuildAcg();

  config.num_threads = GetParam();
  NebulaEngine batch(&(*batch_ds)->catalog, &(*batch_ds)->store,
                     &(*batch_ds)->meta, config);
  batch.RebuildAcg();

  const auto requests = MakeRequests(**baseline_ds, 6);
  ASSERT_FALSE(requests.empty());

  std::vector<AnnotationReport> expected;
  for (const AnnotationRequest& r : requests) {
    auto report = sequential.InsertAnnotation(r.text, r.focal, r.author);
    ASSERT_TRUE(report.ok());
    expected.push_back(std::move(report).value());
  }

  auto reports = batch.InsertAnnotations(requests);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), expected.size());

  for (size_t i = 0; i < expected.size(); ++i) {
    const AnnotationReport& e = expected[i];
    const AnnotationReport& a = (*reports)[i];
    EXPECT_EQ(a.annotation, e.annotation);
    EXPECT_EQ(a.mode, e.mode);
    ASSERT_EQ(a.queries.size(), e.queries.size()) << "request " << i;
    for (size_t q = 0; q < e.queries.size(); ++q) {
      EXPECT_EQ(a.queries[q].keywords, e.queries[q].keywords);
      EXPECT_EQ(a.queries[q].weight, e.queries[q].weight);
    }
    ASSERT_EQ(a.candidates.size(), e.candidates.size()) << "request " << i;
    for (size_t c = 0; c < e.candidates.size(); ++c) {
      EXPECT_EQ(a.candidates[c].tuple, e.candidates[c].tuple);
      EXPECT_EQ(a.candidates[c].confidence, e.candidates[c].confidence);
    }
    EXPECT_EQ(a.verification.auto_accepted, e.verification.auto_accepted);
    EXPECT_EQ(a.verification.auto_rejected, e.verification.auto_rejected);
    EXPECT_EQ(a.verification.pending, e.verification.pending);
    EXPECT_EQ(a.verification.already_attached,
              e.verification.already_attached);
    EXPECT_EQ(a.spam.spam_suspected, e.spam.spam_suspected);
  }

  // The side effects on the store must line up too.
  EXPECT_EQ((*batch_ds)->store.num_annotations(),
            (*baseline_ds)->store.num_annotations());
  EXPECT_EQ((*batch_ds)->store.num_attachments(),
            (*baseline_ds)->store.num_attachments());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BatchIngestTest,
                         ::testing::Values(0u, 1u, 2u, 8u));

}  // namespace
}  // namespace nebula
