#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace nebula {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -5);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket i holds observations <= 2^i us.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11u);
  // The largest finite bucket covers 2^25; everything above overflows.
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 25),
            Histogram::kNumFinite - 1);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 25) + 1),
            Histogram::kNumFinite);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumFinite);
}

TEST(HistogramTest, ObserveCountsSumAndBuckets) {
  Histogram h;
  h.Observe(1);     // bucket 0
  h.Observe(2);     // bucket 1
  h.Observe(3);     // bucket 2
  h.Observe(1000);  // bucket 10 (<= 1024)
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);
  uint64_t total = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    total += snap.buckets[b];
  }
  EXPECT_EQ(total, snap.count);
}

TEST(HistogramTest, QuantileEmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.GetSnapshot();
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.Quantile(q), 0u) << q;
  }
}

TEST(HistogramTest, QuantileSingleBucketInterpolates) {
  Histogram h;
  // All mass in bucket 10 (bounds (1024, 2048]): every quantile must
  // stay inside that bucket's range and grow with q.
  for (int i = 0; i < 100; ++i) h.Observe(1500);
  const Histogram::Snapshot snap = h.GetSnapshot();
  uint64_t prev = 0;
  for (const auto& spec : Histogram::kStandardQuantiles) {
    const uint64_t q = snap.Quantile(spec.q);
    EXPECT_GE(q, 1024u) << spec.name;
    EXPECT_LE(q, 2048u) << spec.name;
    EXPECT_GE(q, prev) << spec.name;
    prev = q;
  }
}

TEST(HistogramTest, QuantileAllOverflowSaturatesToLargestFiniteBound) {
  Histogram h;
  h.Observe(UINT64_MAX);
  h.Observe((uint64_t{1} << 25) + 1);
  const Histogram::Snapshot snap = h.GetSnapshot();
  const uint64_t cap = Histogram::BucketUpperBound(Histogram::kNumFinite - 1);
  EXPECT_EQ(snap.Quantile(0.5), cap);
  EXPECT_EQ(snap.Quantile(0.999), cap);
}

TEST(HistogramTest, QuantileClampsOutOfRangeQ) {
  Histogram h;
  h.Observe(100);
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.Quantile(-1.0), snap.Quantile(0.0));
  EXPECT_EQ(snap.Quantile(2.0), snap.Quantile(1.0));
}

TEST(HistogramTest, QuantileLadderIsMonotoneAcrossSpread) {
  Histogram h;
  for (uint64_t v : {1u, 3u, 17u, 90u, 200u, 5000u, 70000u, 70001u}) {
    h.Observe(v);
  }
  const Histogram::Snapshot snap = h.GetSnapshot();
  uint64_t prev = 0;
  for (int step = 0; step <= 100; ++step) {
    const uint64_t q = snap.Quantile(step / 100.0);
    EXPECT_GE(q, prev) << "q=" << step / 100.0;
    prev = q;
  }
}

TEST(HistogramTest, DeltaSubtractsBaselinePerBucket) {
  Histogram h;
  h.Observe(10);
  h.Observe(1000);
  const Histogram::Snapshot before = h.GetSnapshot();
  h.Observe(10);
  h.Observe(3000);
  const Histogram::Snapshot after = h.GetSnapshot();
  const Histogram::Snapshot delta = after.Delta(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 3010u);
  EXPECT_EQ(delta.buckets[Histogram::BucketIndex(10)], 1u);
  EXPECT_EQ(delta.buckets[Histogram::BucketIndex(3000)], 1u);
  EXPECT_EQ(delta.buckets[Histogram::BucketIndex(1000)], 0u);
}

TEST(HistogramTest, DeltaAgainstStaleBaselineSaturatesAtZero) {
  Histogram a;
  a.Observe(5);
  Histogram b;  // empty — as if the window started after a reset
  const Histogram::Snapshot delta = b.GetSnapshot().Delta(a.GetSnapshot());
  EXPECT_EQ(delta.count, 0u);
  EXPECT_EQ(delta.sum, 0u);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(delta.buckets[i], 0u) << i;
  }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsReturnSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("events_total", {{"kind", "x"}});
  Counter* b = registry.GetCounter("events_total", {{"kind", "x"}});
  Counter* other = registry.GetCounter("events_total", {{"kind", "y"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Increment();
  b->Increment();
  EXPECT_EQ(a->Value(), 2u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsDetachedDummy) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("thing_total");
  counter->Increment();
  // Asking for the same family with a different type must not crash nor
  // alias the counter — and the dummy must not be exported.
  Gauge* dummy = registry.GetGauge("thing_total");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(123);
  const auto families = registry.Snapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].type, MetricType::kCounter);
  ASSERT_EQ(families[0].samples.size(), 1u);
  EXPECT_EQ(families[0].samples[0].counter_value, 1u);
}

TEST(MetricsRegistryTest, FirstHelpWins) {
  MetricsRegistry registry;
  registry.GetCounter("x_total", {}, "first");
  registry.GetCounter("x_total", {{"l", "v"}}, "second");
  const auto families = registry.Snapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].help, "first");
  EXPECT_EQ(families[0].samples.size(), 2u);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// ---------------------------------------------------------------------
// Exporters (golden outputs on a controlled local registry)
// ---------------------------------------------------------------------

TEST(ExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("nebula_events_total", {{"kind", "a"}}, "Event count")
      ->Increment(3);
  registry.GetCounter("nebula_events_total", {{"kind", "b"}})->Increment(7);
  registry.GetGauge("nebula_depth", {}, "Queue depth")->Set(-2);

  const std::string expected =
      "# HELP nebula_depth Queue depth\n"
      "# TYPE nebula_depth gauge\n"
      "nebula_depth -2\n"
      "# HELP nebula_events_total Event count\n"
      "# TYPE nebula_events_total counter\n"
      "nebula_events_total{kind=\"a\"} 3\n"
      "nebula_events_total{kind=\"b\"} 7\n";
  EXPECT_EQ(ExportPrometheus(registry), expected);
}

TEST(ExportTest, PrometheusHistogramIsCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("nebula_lat_us", {}, "Latency");
  h->Observe(1);
  h->Observe(2);
  h->Observe(100);  // bucket 7 (<= 128)

  const std::string text = ExportPrometheus(registry);
  EXPECT_NE(text.find("nebula_lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("nebula_lat_us_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("nebula_lat_us_bucket{le=\"64\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("nebula_lat_us_bucket{le=\"128\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nebula_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nebula_lat_us_sum 103\n"), std::string::npos);
  EXPECT_NE(text.find("nebula_lat_us_count 3\n"), std::string::npos);
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("nebula_sql_total", {{"stmt", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = ExportPrometheus(registry);
  EXPECT_NE(text.find("nebula_sql_total{stmt=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

/// Minimal Prometheus text-format validator: every non-comment line must
/// be `name{labels} value` with a parseable number and balanced quotes.
void ValidatePrometheusText(const std::string& text) {
  size_t pos = 0;
  size_t lines = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
    if (line.empty()) {
      FAIL() << "empty line in exposition output";
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // name[{labels}] value
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
    const std::string series = line.substr(0, space);
    const size_t brace = series.find('{');
    const std::string name =
        brace == std::string::npos ? series : series.substr(0, brace);
    ASSERT_FALSE(name.empty()) << line;
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric-name char in: " << line;
    }
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
      // Quotes must balance (escaped quotes come in pairs with their
      // backslash, so a simple count of unescaped quotes suffices).
      size_t quotes = 0;
      for (size_t i = brace; i < series.size(); ++i) {
        if (series[i] == '"' && series[i - 1] != '\\') ++quotes;
      }
      EXPECT_EQ(quotes % 2, 0u) << line;
    }
  }
  EXPECT_GT(lines, 0u);
}

TEST(ExportTest, GlobalRegistryOutputIsScrapeParseable) {
  // Touch a few global instruments so the export is non-trivial, then
  // validate every line of the full global dump (whatever other tests or
  // engine code already registered).
  auto& global = MetricsRegistry::Global();
  global.GetCounter("nebula_obs_test_events_total", {{"case", "golden"}})
      ->Increment();
  global.GetHistogram("nebula_obs_test_lat_us")->Observe(77);
  ValidatePrometheusText(ExportPrometheus(global));
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"k", "v"}}, "help me")->Increment(5);
  const std::string expected =
      "{\"metrics\":[{\"name\":\"c_total\",\"type\":\"counter\","
      "\"help\":\"help me\",\"samples\":[{\"labels\":{\"k\":\"v\"},"
      "\"value\":5}]}]}";
  EXPECT_EQ(ExportJson(registry), expected);
}

TEST(ExportTest, JsonHistogramKeepsNonCumulativeBucketsWithNullInf) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h_us");
  h->Observe(1);
  h->Observe(2);
  const std::string json = ExportJson(registry);
  EXPECT_NE(json.find("\"count\":2,\"sum\":3"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":2,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":4,\"count\":0}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":null,\"count\":0}"), std::string::npos);
}

TEST(ExportTest, JsonEscapeControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ExportTest, JsonEscapeBackspaceAndFormFeed) {
  // \b and \f have dedicated two-character escapes; everything else below
  // 0x20 falls through to \u00XX.
  EXPECT_EQ(JsonEscape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string(1, '\x00')), "\\u0000");
}

TEST(ExportTest, PromEscapeControlCharacters) {
  // The exposition format has escapes for backslash, quote, and newline
  // only; any other control byte is rendered as a visible \xNN token so
  // it can never corrupt the line protocol.
  EXPECT_EQ(PromEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(PromEscape("x\ry"), "x\\x0dy");
  EXPECT_EQ(PromEscape(std::string(1, '\x01')), "\\x01");
  EXPECT_EQ(PromEscape(std::string(1, '\x1f')), "\\x1f");
  EXPECT_EQ(PromEscape(std::string(1, '\x00')), "\\x00");
}

// ---------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------

TEST(TraceBuilderTest, SpanTreeStructure) {
  TraceBuilder builder;
  const uint32_t root = builder.BeginSpan("root");
  const uint32_t child = builder.BeginSpan("child", root);
  builder.SetDetail(child, "payload");
  builder.EndSpan(child);
  const uint32_t synthetic =
      builder.AddCompleteSpan("phase", root, 10, 5, "detail");
  builder.EndSpan(root);
  const Trace trace = builder.Finish(/*annotation=*/7);

  EXPECT_EQ(trace.annotation, 7u);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].name, "root");
  EXPECT_EQ(trace.spans[0].parent, 0u);
  EXPECT_EQ(trace.spans[1].name, "child");
  EXPECT_EQ(trace.spans[1].parent, root);
  EXPECT_EQ(trace.spans[1].detail, "payload");
  EXPECT_EQ(trace.spans[2].id, synthetic);
  EXPECT_EQ(trace.spans[2].start_us, 10u);
  EXPECT_EQ(trace.spans[2].duration_us, 5u);
  // Parents always precede children; ids are 1-based and ascending.
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    EXPECT_EQ(trace.spans[i].id, i + 1);
    EXPECT_LT(trace.spans[i].parent, trace.spans[i].id);
  }
  // Every span carries the recording thread's ordinal.
  EXPECT_EQ(trace.spans[0].thread_id, CurrentThreadId());
}

TEST(TraceRecorderTest, RingEvictsOldestAndCountsDrops) {
  TraceRecorder recorder(/*capacity=*/2);
  for (uint64_t a = 1; a <= 5; ++a) {
    TraceBuilder b;
    b.EndSpan(b.BeginSpan("root"));
    recorder.Record(b.Finish(a));
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.total_recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 3u);
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].annotation, 4u);
  EXPECT_EQ(traces[1].annotation, 5u);
}

TEST(TraceRecorderTest, JsonShape) {
  TraceRecorder recorder(4);
  TraceBuilder b;
  const uint32_t root = b.BeginSpan("insert_annotation");
  b.AddCompleteSpan("sql", root, 3, 9, "SELECT x");
  b.EndSpan(root);
  recorder.Record(b.Finish(11));

  const std::string json = TracesToJson(recorder);
  EXPECT_EQ(json.find("{\"dropped\":0,\"traces\":[{\"annotation\":11,"),
            0u);
  EXPECT_NE(json.find("\"name\":\"insert_annotation\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"SELECT x\""), std::string::npos);
}

TEST(ScopedSpanTest, NullBuilderIsNoop) {
  ScopedSpan span(nullptr, "nothing");
  EXPECT_EQ(span.id(), 0u);
}

// ---------------------------------------------------------------------
// Engine integration: one insert produces a complete stage 0-3 tree.
// ---------------------------------------------------------------------

TEST(EngineObsTest, InsertAnnotationRecordsStageSpansAndTimings) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  auto dataset = GenerateBioDataset(DatasetSpec::Tiny());
  ASSERT_TRUE(dataset.ok());
  NebulaConfig config;
  config.bounds = {0.2, 0.9};
  NebulaEngine engine(&(*dataset)->catalog, &(*dataset)->store,
                      &(*dataset)->meta, config);
  engine.RebuildAcg();

  const WorkloadAnnotation& wa = (*dataset)->workload.annotations.front();
  auto report = engine.InsertAnnotation(wa.text, {wa.ideal_tuples.front()},
                                        "obs_test");
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // StageTimings replaces the old lone search_us: total folds all stages.
  EXPECT_GE(report->timings.total_us(), report->timings.search_us);
  EXPECT_EQ(report->timings.total_us(),
            report->timings.store_us + report->timings.generation_us +
                report->timings.search_us + report->timings.verification_us);

  const auto traces = engine.trace_recorder().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& trace = traces.back();
  EXPECT_EQ(trace.annotation, report->annotation);

  std::map<std::string, const TraceSpan*> by_name;
  for (const TraceSpan& s : trace.spans) {
    if (by_name.count(s.name) == 0) by_name[s.name] = &s;
  }
  ASSERT_TRUE(by_name.count("insert_annotation"));
  const uint32_t root = by_name["insert_annotation"]->id;
  for (const char* stage :
       {"stage0_store", "stage1_generation", "stage2_execution",
        "stage3_verification"}) {
    ASSERT_TRUE(by_name.count(stage)) << stage << " span missing";
    EXPECT_EQ(by_name[stage]->parent, root) << stage;
  }
  // Stage internals hang under their stage span.
  ASSERT_TRUE(by_name.count("acg_update"));
  EXPECT_EQ(by_name["acg_update"]->parent, by_name["stage0_store"]->id);
  for (const char* phase :
       {"map_generation", "context_adjust", "query_formation"}) {
    ASSERT_TRUE(by_name.count(phase)) << phase;
    EXPECT_EQ(by_name[phase]->parent, by_name["stage1_generation"]->id);
  }
  ASSERT_TRUE(by_name.count("spreading_decision"));
  EXPECT_EQ(by_name["spreading_decision"]->parent,
            by_name["stage2_execution"]->id);
  EXPECT_EQ(by_name["spreading_decision"]->detail, "full_database");
  if (!report->queries.empty()) {
    EXPECT_TRUE(by_name.count("query") || by_name.count("sql"));
  }
  ASSERT_TRUE(by_name.count("spam_guard"));
  EXPECT_EQ(by_name["spam_guard"]->parent, by_name["stage3_verification"]->id);
  ASSERT_TRUE(by_name.count("verification_submit"));
  EXPECT_EQ(by_name["verification_submit"]->parent,
            by_name["stage3_verification"]->id);

  // The engine counters moved.
  auto& global = MetricsRegistry::Global();
  EXPECT_GE(global.GetCounter("nebula_annotations_inserted_total")->Value(),
            1u);
}

TEST(EngineObsTest, TraceCapacityIsHonored) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  auto dataset = GenerateBioDataset(DatasetSpec::Tiny());
  ASSERT_TRUE(dataset.ok());
  NebulaConfig config;
  config.trace_capacity = 2;
  NebulaEngine engine(&(*dataset)->catalog, &(*dataset)->store,
                      &(*dataset)->meta, config);
  engine.RebuildAcg();
  for (int i = 0; i < 4; ++i) {
    const WorkloadAnnotation& wa = (*dataset)->workload.annotations[i];
    ASSERT_TRUE(engine
                    .InsertAnnotation(wa.text, {wa.ideal_tuples.front()},
                                      "obs_test")
                    .ok());
  }
  EXPECT_EQ(engine.trace_recorder().size(), 2u);
  EXPECT_EQ(engine.trace_recorder().dropped(), 2u);
  // DumpTraces is valid JSON with the drop count up front.
  EXPECT_EQ(engine.DumpTraces().find("{\"dropped\":2,"), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace nebula
