#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "common/status.h"
#include "core/acg.h"
#include "core/identify.h"
#include "core/verification.h"
#include "storage/schema.h"

namespace nebula {
namespace {

const TupleId kFocal{0, 0};
const TupleId kT1{0, 1};
const TupleId kT2{0, 2};
const TupleId kT3{0, 3};

CandidateTuple Candidate(const TupleId& t, double conf,
                         std::vector<std::string> evidence = {"q"}) {
  CandidateTuple c;
  c.tuple = t;
  c.confidence = conf;
  c.evidence = std::move(evidence);
  return c;
}

class VerificationTest : public ::testing::Test {
 protected:
  VerificationTest() : manager_(&store_, &acg_, {0.3, 0.8}) {
    annotation_ = store_.AddAnnotation("text");
    EXPECT_TRUE(store_.Attach(annotation_, kFocal).ok());
    acg_.BuildFromStore(store_);
  }

  AnnotationStore store_;
  Acg acg_;
  VerificationManager manager_;
  AnnotationId annotation_ = 0;
};

TEST_F(VerificationTest, SubmitBucketsByBounds) {
  const auto outcome = manager_.Submit(
      annotation_, {Candidate(kT1, 0.9), Candidate(kT2, 0.5),
                    Candidate(kT3, 0.1)});
  EXPECT_EQ(outcome.auto_accepted, 1u);
  EXPECT_EQ(outcome.pending, 1u);
  EXPECT_EQ(outcome.auto_rejected, 1u);
  EXPECT_EQ(manager_.tasks().size(), 3u);
  EXPECT_EQ(manager_.tasks()[0].state, TaskState::kAutoAccepted);
  EXPECT_EQ(manager_.tasks()[1].state, TaskState::kPending);
  EXPECT_EQ(manager_.tasks()[2].state, TaskState::kAutoRejected);
}

TEST_F(VerificationTest, BoundaryConfidencesGoToPending) {
  // Exactly lower or exactly upper: requires expert (Fig. 8 semantics).
  const auto outcome = manager_.Submit(
      annotation_, {Candidate(kT1, 0.3), Candidate(kT2, 0.8)});
  EXPECT_EQ(outcome.pending, 2u);
}

TEST_F(VerificationTest, AutoAcceptAttachesAndUpdatesAcg) {
  ASSERT_EQ(acg_.num_edges(), 0u);
  manager_.Submit(annotation_, {Candidate(kT1, 0.95)});
  // (1) True attachment created.
  EXPECT_TRUE(store_.HasAttachment(annotation_, kT1));
  EXPECT_EQ(store_.FindAttachment(annotation_, kT1)->type,
            AttachmentType::kTrue);
  // (2) ACG gained the focal-candidate edge.
  EXPECT_GT(acg_.EdgeWeight(kFocal, kT1), 0.0);
  // (3) Profile recorded the discovery distance (unreachable pre-edge ->
  // overflow bucket).
  uint64_t total = 0;
  for (uint64_t v : acg_.profile()) total += v;
  EXPECT_EQ(total, 1u);
}

TEST_F(VerificationTest, AlreadyAttachedCandidatesSkipped) {
  const auto outcome = manager_.Submit(
      annotation_, {Candidate(kFocal, 0.9), Candidate(kT1, 0.9)});
  EXPECT_EQ(outcome.already_attached, 1u);
  EXPECT_EQ(outcome.auto_accepted, 1u);
  EXPECT_EQ(manager_.tasks().size(), 1u);
}

TEST_F(VerificationTest, VerifyAcceptsPendingTask) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.5)});
  ASSERT_EQ(manager_.PendingTasks().size(), 1u);
  const uint64_t vid = manager_.PendingTasks()[0]->vid;
  ASSERT_TRUE(manager_.Verify(vid).ok());
  EXPECT_EQ((*manager_.GetTask(vid))->state, TaskState::kExpertAccepted);
  EXPECT_TRUE(store_.HasAttachment(annotation_, kT1));
  EXPECT_TRUE(manager_.PendingTasks().empty());
}

TEST_F(VerificationTest, RejectDiscardsPendingTask) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.5)});
  const uint64_t vid = manager_.PendingTasks()[0]->vid;
  ASSERT_TRUE(manager_.Reject(vid).ok());
  EXPECT_EQ((*manager_.GetTask(vid))->state, TaskState::kExpertRejected);
  EXPECT_FALSE(store_.HasAttachment(annotation_, kT1));
}

TEST_F(VerificationTest, VerifyRejectOnlyValidForPending) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.95)});  // auto-accepted
  EXPECT_EQ(manager_.Verify(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager_.Reject(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager_.Verify(42).code(), StatusCode::kNotFound);
}

TEST_F(VerificationTest, ExecuteCommandVerify) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.5)});
  ASSERT_TRUE(manager_.ExecuteCommand("VERIFY ATTACHMENT 0;").ok());
  EXPECT_TRUE(store_.HasAttachment(annotation_, kT1));
}

TEST_F(VerificationTest, ExecuteCommandReject) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.5)});
  ASSERT_TRUE(manager_.ExecuteCommand("reject attachment 0").ok());
  EXPECT_EQ((*manager_.GetTask(0))->state, TaskState::kExpertRejected);
}

TEST_F(VerificationTest, ExecuteCommandParsingErrors) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.5)});
  EXPECT_FALSE(manager_.ExecuteCommand("VERIFY 0").ok());
  EXPECT_FALSE(manager_.ExecuteCommand("VERIFY ATTACHMENT").ok());
  EXPECT_FALSE(manager_.ExecuteCommand("VERIFY ATTACHMENT x").ok());
  EXPECT_FALSE(manager_.ExecuteCommand("DROP ATTACHMENT 0").ok());
  EXPECT_FALSE(manager_.ExecuteCommand("").ok());
  // Valid vid, unknown task.
  EXPECT_EQ(manager_.ExecuteCommand("VERIFY ATTACHMENT 99").code(),
            StatusCode::kNotFound);
}

TEST_F(VerificationTest, PendingTasksSortedByConfidence) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.4), Candidate(kT2, 0.7),
                                Candidate(kT3, 0.55)});
  const auto pending = manager_.PendingTasks();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_DOUBLE_EQ(pending[0]->confidence, 0.7);
  EXPECT_DOUBLE_EQ(pending[1]->confidence, 0.55);
  EXPECT_DOUBLE_EQ(pending[2]->confidence, 0.4);
}

TEST_F(VerificationTest, TasksCarryEvidence) {
  manager_.Submit(annotation_,
                  {Candidate(kT1, 0.5, {"gene JW0001", "gene aabX"})});
  ASSERT_EQ(manager_.tasks().size(), 1u);
  EXPECT_EQ(manager_.tasks()[0].evidence.size(), 2u);
  EXPECT_EQ(manager_.tasks()[0].evidence[0], "gene JW0001");
}

TEST_F(VerificationTest, PromotesExistingPredictedEdge) {
  ASSERT_TRUE(
      store_.Attach(annotation_, kT1, AttachmentType::kPredicted, 0.6).ok());
  // Submit skips it (already attached)... so verify via direct task flow:
  // create a fresh annotation without the predicted edge for the manager,
  // then check PromoteToTrue path through ApplyAccept using Submit on a
  // different tuple is covered elsewhere. Here, assert the skip.
  const auto outcome = manager_.Submit(annotation_, {Candidate(kT1, 0.9)});
  EXPECT_EQ(outcome.already_attached, 1u);
}

TEST_F(VerificationTest, BoundsUpdatable) {
  manager_.set_bounds({0.0, 0.0});
  const auto outcome = manager_.Submit(annotation_, {Candidate(kT1, 0.5)});
  EXPECT_EQ(outcome.auto_accepted, 1u);  // everything above upper=0
}

TEST_F(VerificationTest, ComputeStatsTracksLifecycle) {
  manager_.Submit(annotation_, {Candidate(kT1, 0.9), Candidate(kT2, 0.5),
                                Candidate(kT3, 0.1)});
  auto stats = manager_.ComputeStats();
  EXPECT_EQ(stats.auto_accepted, 1u);
  EXPECT_EQ(stats.pending, 1u);
  EXPECT_EQ(stats.auto_rejected, 1u);
  EXPECT_EQ(stats.total(), 3u);
  EXPECT_DOUBLE_EQ(stats.expert_hit_ratio(), 0.0);

  ASSERT_TRUE(manager_.Verify(manager_.PendingTasks()[0]->vid).ok());
  stats = manager_.ComputeStats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.expert_accepted, 1u);
  EXPECT_DOUBLE_EQ(stats.expert_hit_ratio(), 1.0);
}

TEST(TaskStateTest, Names) {
  EXPECT_STREQ(TaskStateName(TaskState::kPending), "PENDING");
  EXPECT_STREQ(TaskStateName(TaskState::kAutoAccepted), "AUTO_ACCEPTED");
  EXPECT_STREQ(TaskStateName(TaskState::kExpertRejected), "EXPERT_REJECTED");
}

}  // namespace
}  // namespace nebula
