#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* gene =
        *catalog_.CreateTable("gene",
                              Schema({{"gid", DataType::kString, true},
                                      {"name", DataType::kString},
                                      {"length", DataType::kInt64},
                                      {"notes", DataType::kString}}));
    auto add = [&](const char* gid, const char* name, int64_t len,
                   const char* notes) {
      ASSERT_TRUE(
          gene->Insert({Value(gid), Value(name), Value(len), Value(notes)})
              .ok());
    };
    add("JW0001", "grpC", 100, "heat shock related gene");
    add("JW0002", "groP", 200, "binds grpC under stress");
    add("JW0003", "insL", 300, "insertion element");
    add("JW0004", "nhaA", 400, "sodium transport");
    add("JW0005", "grpC2", 150, "paralog of grpC");
    ASSERT_TRUE(gene->BuildTextIndex(3).ok());
  }

  std::vector<Table::RowId> Run(const SelectQuery& q,
                                const std::unordered_set<Table::RowId>*
                                    restrict = nullptr) {
    QueryExecutor exec(&catalog_);
    auto r = exec.Execute(q, restrict);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<Table::RowId>{};
  }

  Catalog catalog_;
};

TEST_F(QueryTest, EqualityUsesIndex) {
  QueryExecutor exec(&catalog_);
  SelectQuery q{"gene", {{"gid", CompareOp::kEq, Value("JW0003")}}};
  auto rows = *exec.Execute(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 2u);
  EXPECT_EQ(exec.stats().index_lookups, 1u);
  // Index probe examines only the candidate row, not the whole table.
  EXPECT_EQ(exec.stats().rows_examined, 1u);
}

TEST_F(QueryTest, EmptyPredicateListReturnsAll) {
  EXPECT_EQ(Run({"gene", {}}).size(), 5u);
}

TEST_F(QueryTest, UnknownTableErrors) {
  QueryExecutor exec(&catalog_);
  EXPECT_EQ(exec.Execute({"nope", {}}).status().code(), StatusCode::kNotFound);
}

TEST_F(QueryTest, UnknownColumnErrors) {
  QueryExecutor exec(&catalog_);
  SelectQuery q{"gene", {{"bogus", CompareOp::kEq, Value("x")}}};
  EXPECT_EQ(exec.Execute(q).status().code(), StatusCode::kNotFound);
}

TEST_F(QueryTest, ComparisonOperatorsOnInts) {
  EXPECT_EQ(Run({"gene", {{"length", CompareOp::kLt, Value(int64_t{200})}}})
                .size(),
            2u);  // 100, 150
  EXPECT_EQ(Run({"gene", {{"length", CompareOp::kLe, Value(int64_t{200})}}})
                .size(),
            3u);
  EXPECT_EQ(Run({"gene", {{"length", CompareOp::kGt, Value(int64_t{300})}}})
                .size(),
            1u);
  EXPECT_EQ(Run({"gene", {{"length", CompareOp::kGe, Value(int64_t{300})}}})
                .size(),
            2u);
  EXPECT_EQ(Run({"gene", {{"length", CompareOp::kNe, Value(int64_t{100})}}})
                .size(),
            4u);
}

TEST_F(QueryTest, StringOrderingComparison) {
  EXPECT_EQ(Run({"gene", {{"gid", CompareOp::kLt, Value("JW0003")}}}).size(),
            2u);
}

TEST_F(QueryTest, MixedTypeOrderedComparisonNeverMatches) {
  EXPECT_TRUE(
      Run({"gene", {{"length", CompareOp::kLt, Value("200")}}}).empty());
}

TEST_F(QueryTest, ConjunctionOfPredicates) {
  SelectQuery q{"gene",
                {{"name", CompareOp::kEq, Value("grpC")},
                 {"length", CompareOp::kGe, Value(int64_t{100})}}};
  ASSERT_EQ(Run(q).size(), 1u);
  SelectQuery none{"gene",
                   {{"name", CompareOp::kEq, Value("grpC")},
                    {"length", CompareOp::kGt, Value(int64_t{100})}}};
  EXPECT_TRUE(Run(none).empty());
}

TEST_F(QueryTest, ContainsTokenViaTextIndex) {
  QueryExecutor exec(&catalog_);
  SelectQuery q{"gene", {{"notes", CompareOp::kContainsToken, Value("grpC")}}};
  auto rows = *exec.Execute(q);
  ASSERT_EQ(rows.size(), 2u);  // rows 1 and 4 mention grpC in notes
  EXPECT_EQ(exec.stats().index_lookups, 1u);
}

TEST_F(QueryTest, ContainsTokenScanModeBypassesIndex) {
  // allow_text_index = false: the indexed column must fall back to a
  // full scan (same answers, all rows examined).
  QueryExecutor exec(&catalog_);
  SelectQuery q{"gene", {{"notes", CompareOp::kContainsToken, Value("grpc")}}};
  auto rows = *exec.Execute(q, nullptr, /*allow_text_index=*/false);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(exec.stats().index_lookups, 0u);
  EXPECT_EQ(exec.stats().rows_examined, 5u);  // whole table scanned
}

TEST_F(QueryTest, ContainsTokenWithoutIndexScans) {
  // Column 'name' has no text index -> fallback scan still finds matches.
  SelectQuery q{"gene", {{"name", CompareOp::kContainsToken, Value("grpc")}}};
  auto rows = Run(q);
  // "grpC" tokenizes to {grpc}; "grpC2" to {grpc2}: only exact token match.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST_F(QueryTest, ContainsTokenOnNonStringNeverMatches) {
  SelectQuery q{"gene",
                {{"length", CompareOp::kContainsToken, Value("100")}}};
  EXPECT_TRUE(Run(q).empty());
}

TEST_F(QueryTest, RestrictionLimitsRows) {
  const std::unordered_set<Table::RowId> allowed{0, 4};
  SelectQuery q{"gene", {{"notes", CompareOp::kContainsToken, Value("grpc")}}};
  auto rows = Run(q, &allowed);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 4u);  // row 1 matches too but is outside the miniDB
}

TEST_F(QueryTest, RestrictionWithScanPath) {
  const std::unordered_set<Table::RowId> allowed{1, 2};
  SelectQuery q{"gene", {{"length", CompareOp::kGe, Value(int64_t{100})}}};
  auto rows = Run(q, &allowed);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(QueryTest, RestrictionWithEqualityPath) {
  const std::unordered_set<Table::RowId> allowed{1};
  SelectQuery q{"gene", {{"gid", CompareOp::kEq, Value("JW0001")}}};
  EXPECT_TRUE(Run(q, &allowed).empty());
}

TEST_F(QueryTest, StatsAccumulateAcrossQueries) {
  QueryExecutor exec(&catalog_);
  ASSERT_TRUE(exec.Execute({"gene", {}}).ok());
  ASSERT_TRUE(exec.Execute({"gene", {}}).ok());
  EXPECT_EQ(exec.stats().rows_examined, 10u);
  EXPECT_EQ(exec.stats().matches, 10u);
  exec.ResetStats();
  EXPECT_EQ(exec.stats().rows_examined, 0u);
}

TEST(ExecStatsTest, ResetZeroesAllCounters) {
  ExecStats stats;
  stats.rows_examined = 7;
  stats.index_lookups = 3;
  stats.matches = 2;
  stats.Reset();
  EXPECT_EQ(stats.rows_examined, 0u);
  EXPECT_EQ(stats.index_lookups, 0u);
  EXPECT_EQ(stats.matches, 0u);
}

TEST_F(QueryTest, AccumulateStatsFoldsWorkerCounters) {
  // Worker threads execute with a private ExecStats and fold it back into
  // the engine's accumulator after the join.
  QueryExecutor exec(&catalog_);
  ASSERT_TRUE(exec.Execute({"gene", {}}).ok());
  const ExecStats base = exec.stats();

  ExecStats worker;
  worker.rows_examined = 11;
  worker.index_lookups = 5;
  worker.matches = 4;
  exec.AccumulateStats(worker);
  EXPECT_EQ(exec.stats().rows_examined, base.rows_examined + 11);
  EXPECT_EQ(exec.stats().index_lookups, base.index_lookups + 5);
  EXPECT_EQ(exec.stats().matches, base.matches + 4);
}

TEST(QueryToStringTest, SqlRendering) {
  SelectQuery q{"gene",
                {{"gid", CompareOp::kEq, Value("JW0001")},
                 {"length", CompareOp::kGt, Value(int64_t{5})}}};
  EXPECT_EQ(q.ToSqlString(),
            "SELECT * FROM gene WHERE gid = 'JW0001' AND length > '5'");
  EXPECT_EQ((SelectQuery{"gene", {}}.ToSqlString()), "SELECT * FROM gene");
}

// ------------------------------- joins ---------------------------------

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* gene = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"family", DataType::kString}}));
    Table* protein = *catalog_.CreateTable(
        "protein", Schema({{"pid", DataType::kString, true},
                           {"gene_gid", DataType::kString},
                           {"ptype", DataType::kString}}));
    ASSERT_TRUE(catalog_.CreateTable("island",
                                     Schema({{"x", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(gene->Insert({Value("JW0001"), Value("F1")}).ok());
    ASSERT_TRUE(gene->Insert({Value("JW0002"), Value("F2")}).ok());
    ASSERT_TRUE(
        protein->Insert({Value("P1"), Value("JW0001"), Value("kinase")})
            .ok());
    ASSERT_TRUE(
        protein->Insert({Value("P2"), Value("JW0001"), Value("receptor")})
            .ok());
    ASSERT_TRUE(
        protein->Insert({Value("P3"), Value("JW0002"), Value("kinase")})
            .ok());
    ASSERT_TRUE(
        catalog_.AddForeignKey("protein", "gene_gid", "gene", "gid").ok());
  }

  Catalog catalog_;
};

TEST_F(JoinTest, ChildToParentJoin) {
  QueryExecutor exec(&catalog_);
  JoinQuery join{"protein", "gene", {}, {}};
  auto pairs = exec.ExecuteJoin(join);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 3u);  // every protein matches its gene
}

TEST_F(JoinTest, ParentToChildJoin) {
  QueryExecutor exec(&catalog_);
  JoinQuery join{"gene", "protein", {}, {}};
  auto pairs = exec.ExecuteJoin(join);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 3u);
  // Gene JW0001 (row 0) pairs with two proteins.
  size_t for_gene0 = 0;
  for (const auto& [l, r] : *pairs) {
    if (l == 0) ++for_gene0;
  }
  EXPECT_EQ(for_gene0, 2u);
}

TEST_F(JoinTest, PredicatesOnBothSides) {
  QueryExecutor exec(&catalog_);
  JoinQuery join{"gene",
                 "protein",
                 {{"family", CompareOp::kEq, Value("F1")}},
                 {{"ptype", CompareOp::kEq, Value("kinase")}}};
  auto pairs = exec.ExecuteJoin(join);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0].first, 0u);   // gene JW0001
  EXPECT_EQ((*pairs)[0].second, 0u);  // protein P1
}

TEST_F(JoinTest, NoLinkingForeignKeyFails) {
  QueryExecutor exec(&catalog_);
  JoinQuery join{"gene", "island", {}, {}};
  EXPECT_EQ(exec.ExecuteJoin(join).status().code(), StatusCode::kNotFound);
}

TEST_F(JoinTest, UnknownTableOrColumnFails) {
  QueryExecutor exec(&catalog_);
  EXPECT_FALSE(exec.ExecuteJoin({"gene", "missing", {}, {}}).ok());
  JoinQuery bad_col{"gene", "protein", {}, {{"bogus", CompareOp::kEq,
                                             Value("x")}}};
  EXPECT_EQ(exec.ExecuteJoin(bad_col).status().code(),
            StatusCode::kNotFound);
}

TEST_F(JoinTest, EmptyResultWhenNoMatch) {
  QueryExecutor exec(&catalog_);
  JoinQuery join{"gene",
                 "protein",
                 {{"family", CompareOp::kEq, Value("F9")}},
                 {}};
  auto pairs = exec.ExecuteJoin(join);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kContainsToken), "CONTAINS");
}

}  // namespace
}  // namespace nebula
