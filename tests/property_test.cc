#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>

#include "annotation/annotation_store.h"
#include "annotation/quality.h"
#include "annotation/serialize.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/acg.h"
#include "core/assessment.h"
#include "core/context_adjust.h"
#include "core/engine.h"
#include "core/focal_spreading.h"
#include "core/identify.h"
#include "core/query_generation.h"
#include "core/signature_maps.h"
#include "keyword/engine.h"
#include "keyword/mini_db.h"
#include "keyword/query_types.h"
#include "meta/nebula_meta.h"
#include "sql/parser.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"
#include "text/tokenizer.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace nebula {
namespace {

/// Shared Tiny dataset for all property suites (generated once).
BioDataset* SharedDataset() {
  static BioDataset* dataset = [] {
    auto result = GenerateBioDataset(DatasetSpec::Tiny());
    if (!result.ok()) return static_cast<BioDataset*>(nullptr);
    return result->release();
  }();
  return dataset;
}

// ---------------- Property: epsilon monotonicity --------------------
// Raising the cutoff can only remove emphasized words, so the number of
// generated queries is non-increasing in epsilon, and every true
// reference survives epsilon = 0.4 (which accepts everything 0.6 does).

class EpsilonMonotonicity : public ::testing::TestWithParam<size_t> {};

TEST_P(EpsilonMonotonicity, QueryCountNonIncreasingInEpsilon) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  size_t prev = SIZE_MAX;
  for (double eps : {0.4, 0.6, 0.8}) {
    QueryGenerationParams params;
    params.epsilon = eps;
    QueryGenerator gen(&ds->meta, params);
    const size_t n = gen.Generate(wa.text).queries.size();
    EXPECT_LE(n, prev) << "eps=" << eps;
    prev = n;
  }
}

TEST_P(EpsilonMonotonicity, NoFalseNegativesAtPointSix) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  QueryGenerationParams params;
  params.epsilon = 0.6;
  QueryGenerator gen(&ds->meta, params);
  const auto queries = gen.Generate(wa.text).queries;
  for (const auto& ref : wa.refs) {
    bool covered = false;
    for (const auto& q : queries) {
      for (const auto& k : q.keywords) {
        if (k == ref.surface[0]) covered = true;
      }
    }
    EXPECT_TRUE(covered) << "missed reference " << ref.surface[0] << " in: "
                         << wa.text;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadAnnotations, EpsilonMonotonicity,
                         ::testing::Range<size_t>(0, 60, 7));

// ------------- Property: shared == isolated execution ----------------

class SharedExecutionEquivalence
    : public ::testing::TestWithParam<size_t> {};

TEST_P(SharedExecutionEquivalence, IdenticalCandidates) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];

  QueryGenerator gen(&ds->meta);
  const auto queries = gen.Generate(wa.text).queries;
  KeywordSearchEngine engine(&ds->catalog, &ds->meta);
  Acg acg;
  acg.BuildFromStore(ds->store);

  IdentifyParams isolated_params;
  IdentifyParams shared_params;
  shared_params.shared_execution = true;
  TupleIdentifier isolated(&engine, &acg, isolated_params);
  TupleIdentifier shared(&engine, &acg, shared_params);

  const std::vector<TupleId> focal{wa.ideal_tuples.front()};
  const auto a = *isolated.Identify(queries, focal);
  const auto b = *shared.Identify(queries, focal);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple);
    EXPECT_NEAR(a[i].confidence, b[i].confidence, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadAnnotations, SharedExecutionEquivalence,
                         ::testing::Values(0, 9, 21, 33, 45, 57));

// ------------- Property: batch ingest == one-at-a-time ingest ----------
// InsertAnnotations pipelines Stage-1 generation on the worker pool, but
// per-annotation candidates must stay identical to inserting the same
// requests one at a time.

class BatchIngestEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchIngestEquivalence, SameCandidatesPerAnnotation) {
  // Ingestion mutates the store and the ACG, so each engine gets its own
  // freshly generated (deterministic) dataset — never the shared one.
  auto seq_ds = GenerateBioDataset(DatasetSpec::Tiny());
  auto batch_ds = GenerateBioDataset(DatasetSpec::Tiny());
  ASSERT_TRUE(seq_ds.ok());
  ASSERT_TRUE(batch_ds.ok());

  Rng rng(GetParam());
  const auto& annotations = (*seq_ds)->workload.annotations;
  std::vector<AnnotationRequest> requests;
  for (uint64_t idx : rng.SampleWithoutReplacement(annotations.size(), 5)) {
    const WorkloadAnnotation& wa = annotations[idx];
    if (wa.ideal_tuples.empty()) continue;
    requests.push_back({wa.text, {wa.ideal_tuples.front()}, "prop"});
  }
  ASSERT_FALSE(requests.empty());

  NebulaConfig config;
  NebulaEngine sequential(&(*seq_ds)->catalog, &(*seq_ds)->store,
                          &(*seq_ds)->meta, config);
  sequential.RebuildAcg();
  config.num_threads = 2;
  NebulaEngine batch(&(*batch_ds)->catalog, &(*batch_ds)->store,
                     &(*batch_ds)->meta, config);
  batch.RebuildAcg();

  std::vector<AnnotationReport> expected;
  for (const AnnotationRequest& r : requests) {
    auto report = sequential.InsertAnnotation(r.text, r.focal, r.author);
    ASSERT_TRUE(report.ok());
    expected.push_back(std::move(report).value());
  }
  auto reports = batch.InsertAnnotations(requests);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), expected.size());

  // Order-normalized comparison of the candidate sets.
  const auto normalized = [](std::vector<CandidateTuple> c) {
    std::sort(c.begin(), c.end(),
              [](const CandidateTuple& a, const CandidateTuple& b) {
                return a.tuple < b.tuple;
              });
    return c;
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    const auto e = normalized(expected[i].candidates);
    const auto a = normalized((*reports)[i].candidates);
    ASSERT_EQ(a.size(), e.size()) << "request " << i;
    for (size_t c = 0; c < e.size(); ++c) {
      EXPECT_EQ(a[c].tuple, e[c].tuple);
      EXPECT_NEAR(a[c].confidence, e[c].confidence, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchIngestEquivalence,
                         ::testing::Values(3u, 17u, 2026u));

// -------- Property: focal-spreading results nest in full results -------

class MiniDbSubset : public ::testing::TestWithParam<size_t> {};

TEST_P(MiniDbSubset, ApproximateCandidatesAreSubsetOfFull) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const size_t k = GetParam();
  const WorkloadAnnotation& wa = ds->workload.annotations[10];

  QueryGenerator gen(&ds->meta);
  const auto queries = gen.Generate(wa.text).queries;
  KeywordSearchEngine engine(&ds->catalog, &ds->meta);
  Acg acg;
  acg.BuildFromStore(ds->store);
  TupleIdentifier identifier(&engine, &acg);

  // Use a corpus-annotated tuple as focal so the ACG has the node.
  const std::vector<TupleId> focal{wa.ideal_tuples.front()};
  FocalSpreadingParams sp;
  sp.require_stable_acg = false;
  FocalSpreading spreading(&acg, sp);
  const MiniDb mini = spreading.BuildMiniDb(focal, k);

  const auto approx = *identifier.Identify(queries, focal, &mini);
  const auto full = *identifier.Identify(queries, focal);
  EXPECT_LE(approx.size(), full.size());
  for (const auto& c : approx) {
    EXPECT_TRUE(mini.Contains(c.tuple));
    bool in_full = false;
    for (const auto& f : full) {
      if (f.tuple == c.tuple) in_full = true;
    }
    EXPECT_TRUE(in_full);
  }
}

TEST_P(MiniDbSubset, MiniDbGrowsMonotonicallyWithK) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const size_t k = GetParam();
  Acg acg;
  acg.BuildFromStore(ds->store);
  FocalSpreading spreading(&acg);
  const std::vector<TupleId> focal{
      ds->workload.annotations[10].ideal_tuples.front()};
  EXPECT_LE(spreading.BuildMiniDb(focal, k).size(),
            spreading.BuildMiniDb(focal, k + 1).size());
}

INSTANTIATE_TEST_SUITE_P(Radii, MiniDbSubset,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ------------- Property: candidate confidence normalization ------------

class ConfidenceNormalization : public ::testing::TestWithParam<size_t> {};

TEST_P(ConfidenceNormalization, InUnitIntervalWithMaxOne) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  QueryGenerator gen(&ds->meta);
  const auto queries = gen.Generate(wa.text).queries;
  if (queries.empty()) GTEST_SKIP();
  KeywordSearchEngine engine(&ds->catalog, &ds->meta);
  Acg acg;
  acg.BuildFromStore(ds->store);
  TupleIdentifier identifier(&engine, &acg);
  const auto candidates =
      *identifier.Identify(queries, {wa.ideal_tuples.front()});
  if (candidates.empty()) GTEST_SKIP();
  EXPECT_DOUBLE_EQ(candidates[0].confidence, 1.0);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GT(candidates[i].confidence, 0.0);
    EXPECT_LE(candidates[i].confidence, candidates[i - 1].confidence);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadAnnotations, ConfidenceNormalization,
                         ::testing::Range<size_t>(0, 60, 11));

// ------------- Property: ACG weights are a valid similarity ------------

class AcgWeightProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcgWeightProperty, WeightsSymmetricAndBounded) {
  // Random bipartite attachment graphs driven by the seed.
  Rng rng(GetParam());
  AnnotationStore store;
  const size_t annotations = 30;
  const size_t tuples = 15;
  for (size_t a = 0; a < annotations; ++a) {
    const AnnotationId id = store.AddAnnotation("x");
    const size_t fanout = 1 + rng.Uniform(4);
    for (uint64_t t : rng.SampleWithoutReplacement(tuples, fanout)) {
      ASSERT_TRUE(store.Attach(id, {0, t}).ok());
    }
  }
  Acg acg;
  acg.BuildFromStore(store);
  for (uint64_t i = 0; i < tuples; ++i) {
    for (uint64_t j = 0; j < tuples; ++j) {
      const double w = acg.EdgeWeight({0, i}, {0, j});
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0);
      EXPECT_NEAR(w, acg.EdgeWeight({0, j}, {0, i}), 1e-12);
    }
  }
}

TEST_P(AcgWeightProperty, HopDistanceConsistentWithNeighborhood) {
  Rng rng(GetParam());
  AnnotationStore store;
  for (size_t a = 0; a < 25; ++a) {
    const AnnotationId id = store.AddAnnotation("x");
    for (uint64_t t : rng.SampleWithoutReplacement(12, 2)) {
      ASSERT_TRUE(store.Attach(id, {0, t}).ok());
    }
  }
  Acg acg;
  acg.BuildFromStore(store);
  const std::vector<TupleId> focal{{0, 0}};
  if (!acg.HasNode(focal[0])) GTEST_SKIP();
  for (size_t k = 0; k <= 3; ++k) {
    const auto hood = acg.KHopNeighborhood(focal, k);
    for (const TupleId& t : hood) {
      const int d = acg.HopDistance(focal, t);
      EXPECT_GE(d, 0);
      EXPECT_LE(static_cast<size_t>(d), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcgWeightProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ------ Property: F_P is zero whenever nothing is auto-accepted --------

class NoAutoAcceptNoFalsePositive
    : public ::testing::TestWithParam<size_t> {};

TEST_P(NoAutoAcceptNoFalsePositive, UpperBoundOneImpliesZeroFp) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  QueryGenerator gen(&ds->meta);
  const auto queries = gen.Generate(wa.text).queries;
  KeywordSearchEngine engine(&ds->catalog, &ds->meta);
  Acg acg;
  acg.BuildFromStore(ds->store);
  TupleIdentifier identifier(&engine, &acg);
  const std::vector<TupleId> focal{wa.ideal_tuples.front()};
  const auto candidates = *identifier.Identify(queries, focal);

  EdgeSet ideal;
  for (const TupleId& t : wa.ideal_tuples) ideal.Add(1000, t);
  // beta_upper = 1.0: nothing can be auto-accepted (Fig. 8), so F_P = 0.
  const AssessmentCounts counts =
      AssessPrediction(1000, candidates, focal, ideal, {0.3, 1.0});
  EXPECT_EQ(counts.n_accept(), 0u);
  EXPECT_DOUBLE_EQ(ComputeAssessment(counts).fp, 0.0);
}

INSTANTIATE_TEST_SUITE_P(WorkloadAnnotations, NoAutoAcceptNoFalsePositive,
                         ::testing::Values(2u, 17u, 31u, 44u, 59u));

// ------------- Property: SQL parser is total (no crashes) --------------
// Mutated valid statements and random printable garbage must always give
// either a parsed statement or a clean error status.

class SqlParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlParserFuzz, NeverCrashesOnMutatedInput) {
  Rng rng(GetParam());
  const std::string seeds[] = {
      "SELECT gid, name FROM gene WHERE length > 1000 AND family = 'F1'",
      "ANNOTATE 'related to gene JW0014' ON gene WHERE gid = 'x' BY 'a'",
      "INSERT INTO gene VALUES ('JW0001', 'abcD', 42)",
      "SELECT * FROM gene JOIN protein WHERE protein.ptype = 'kinase'",
      "VERIFY ATTACHMENT 17;",
      "SHOW PENDING",
  };
  for (int round = 0; round < 300; ++round) {
    std::string input = seeds[rng.Uniform(std::size(seeds))];
    // Apply 1-5 random mutations: delete, duplicate, or randomize a char.
    const size_t mutations = 1 + rng.Uniform(5);
    for (size_t m = 0; m < mutations && !input.empty(); ++m) {
      const size_t pos = rng.Uniform(input.size());
      switch (rng.Uniform(3)) {
        case 0:
          input.erase(pos, 1);
          break;
        case 1:
          input.insert(input.begin() + static_cast<ptrdiff_t>(pos),
                       input[pos]);
          break;
        default:
          input[pos] = static_cast<char>(' ' + rng.Uniform(95));
      }
    }
    // The only requirement: a clean Result, never a crash/UB.
    const auto result = sql::ParseStatement(input);
    (void)result;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- Property: serializer round-trips random databases ----------

class SerializeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeRoundTrip, RandomDatabaseSurvives) {
  Rng rng(GetParam());
  Catalog catalog;
  AnnotationStore store;
  const size_t num_tables = 1 + rng.Uniform(3);
  for (size_t t = 0; t < num_tables; ++t) {
    std::vector<ColumnDef> columns;
    const size_t num_columns = 1 + rng.Uniform(4);
    for (size_t c = 0; c < num_columns; ++c) {
      const DataType type = static_cast<DataType>(rng.Uniform(3));
      columns.push_back({"c" + std::to_string(c), type, false});
    }
    Table* table =
        *catalog.CreateTable("t" + std::to_string(t), Schema(columns));
    const size_t rows = rng.Uniform(20);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (const auto& col : columns) {
        switch (col.type) {
          case DataType::kInt64:
            row.push_back(Value(static_cast<int64_t>(rng.Next())));
            break;
          case DataType::kDouble:
            row.push_back(Value(rng.NextDouble() * 1e6 - 5e5));
            break;
          case DataType::kString: {
            std::string text;
            const size_t len = rng.Uniform(24);
            for (size_t i = 0; i < len; ++i) {
              text += static_cast<char>(' ' + rng.Uniform(95));
            }
            if (rng.Bernoulli(0.3)) text += "\ttab\nnewline\\slash";
            row.push_back(Value(text));
            break;
          }
        }
      }
      ASSERT_TRUE(table->Insert(std::move(row)).ok());
    }
    // A few annotations on random rows.
    for (size_t a = 0; a < 3 && table->num_rows() > 0; ++a) {
      const AnnotationId id = store.AddAnnotation(
          "note " + std::to_string(rng.Next() % 1000), "fuzzer");
      (void)store.Attach(id, {table->id(), rng.Uniform(table->num_rows())});
    }
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("nebula_rt_" + std::to_string(GetParam())))
          .string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(DatabaseSerializer::Save(dir, catalog, &store).ok());

  Catalog loaded;
  AnnotationStore loaded_store;
  ASSERT_TRUE(DatabaseSerializer::Load(dir, &loaded, &loaded_store).ok());
  std::filesystem::remove_all(dir);

  ASSERT_EQ(loaded.num_tables(), catalog.num_tables());
  for (const auto& table : catalog.tables()) {
    const Table* other = *loaded.GetTable(table->name());
    ASSERT_EQ(other->num_rows(), table->num_rows());
    for (Table::RowId r = 0; r < table->num_rows(); ++r) {
      for (size_t c = 0; c < table->schema().num_columns(); ++c) {
        EXPECT_EQ(other->GetCell(r, c), table->GetCell(r, c))
            << table->name() << " row " << r << " col " << c;
      }
    }
  }
  EXPECT_EQ(loaded_store.num_annotations(), store.num_annotations());
  EXPECT_EQ(loaded_store.num_attachments(), store.num_attachments());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ------------------ Property: Stage-1 invariants -----------------------
// Query generation is a pure function of (text, meta): weights stay in
// [0,1], repeated generation is bit-identical, and no two emitted queries
// carry the same keyword multiset (deduplication is idempotent).

class StageOneInvariants : public ::testing::TestWithParam<size_t> {};

TEST_P(StageOneInvariants, QueryWeightsInUnitInterval) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  QueryGenerator gen(&ds->meta);
  for (const KeywordQuery& q : gen.Generate(wa.text).queries) {
    EXPECT_GT(q.weight, 0.0) << q.ToString();
    EXPECT_LE(q.weight, 1.0) << q.ToString();
  }
}

TEST_P(StageOneInvariants, GenerationDeterministicAndDeduplicated) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  QueryGenerator first(&ds->meta);
  QueryGenerator second(&ds->meta);
  const auto a = first.Generate(wa.text).queries;
  const auto b = second.Generate(wa.text).queries;
  ASSERT_EQ(a.size(), b.size());
  std::vector<std::vector<std::string>> keyword_sets;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
    EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    EXPECT_EQ(a[i].label, b[i].label);
    std::vector<std::string> sorted = a[i].keywords;
    std::sort(sorted.begin(), sorted.end());
    keyword_sets.push_back(std::move(sorted));
  }
  // Dedup idempotence: generating again must not re-introduce a keyword
  // multiset that deduplication already folded.
  std::sort(keyword_sets.begin(), keyword_sets.end());
  EXPECT_EQ(std::adjacent_find(keyword_sets.begin(), keyword_sets.end()),
            keyword_sets.end())
      << "duplicate keyword multiset in: " << wa.text;
}

INSTANTIATE_TEST_SUITE_P(WorkloadAnnotations, StageOneInvariants,
                         ::testing::Range<size_t>(0, 60, 6));

// ---------- Property: plan-cache hits are byte-identical to cold --------
// The keyword->configuration plan cache may only ever change wall time:
// candidates served through a cache hit must equal both a cold run and a
// cache-disabled run bit for bit (tuples, confidences, evidence).

class PlanCacheEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(PlanCacheEquivalence, HitResultsBitIdenticalToCold) {
  BioDataset* ds = SharedDataset();
  ASSERT_NE(ds, nullptr);
  const WorkloadAnnotation& wa = ds->workload.annotations[GetParam()];
  QueryGenerator gen(&ds->meta);
  const auto queries = gen.Generate(wa.text).queries;
  if (queries.empty()) GTEST_SKIP();
  KeywordSearchEngine engine(&ds->catalog, &ds->meta);
  Acg acg;
  acg.BuildFromStore(ds->store);
  PlanCache cache(&ds->meta);

  IdentifyParams cached_params;
  IdentifyParams uncached_params;
  uncached_params.use_plan_cache = false;
  TupleIdentifier cached(&engine, &acg, cached_params, nullptr, nullptr, 0,
                         &cache);
  TupleIdentifier uncached(&engine, &acg, uncached_params, nullptr, nullptr,
                           0, &cache);

  const std::vector<TupleId> focal{wa.ideal_tuples.front()};
  const auto cold = *cached.Identify(queries, focal);    // fills the cache
  EXPECT_GT(cache.size(), 0u);
  const auto hit = *cached.Identify(queries, focal);     // served from it
  const auto bypass = *uncached.Identify(queries, focal);

  ASSERT_EQ(hit.size(), cold.size());
  ASSERT_EQ(bypass.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(hit[i].tuple, cold[i].tuple);
    EXPECT_EQ(hit[i].confidence, cold[i].confidence);  // exact, not NEAR
    EXPECT_EQ(hit[i].evidence, cold[i].evidence);
    EXPECT_EQ(bypass[i].tuple, cold[i].tuple);
    EXPECT_EQ(bypass[i].confidence, cold[i].confidence);
    EXPECT_EQ(bypass[i].evidence, cold[i].evidence);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadAnnotations, PlanCacheEquivalence,
                         ::testing::Values(0u, 9u, 21u, 33u, 45u, 57u));

// ------ Property: every NebulaMeta mutation invalidates the cache -------
// Each successful mutator must bump version(), and a bumped version must
// flush the plan cache on its next group lookup.

TEST(PlanCacheInvalidation, EveryMetaMutationBumpsVersionAndFlushes) {
  auto ds = GenerateBioDataset(DatasetSpec::Tiny());
  ASSERT_TRUE(ds.ok());
  NebulaMeta& meta = (*ds)->meta;
  KeywordSearchEngine engine(&(*ds)->catalog, &meta);
  PlanCache cache(&meta);

  QueryGenerator gen(&meta);
  const auto queries =
      gen.Generate((*ds)->workload.annotations[0].text).queries;
  ASSERT_FALSE(queries.empty());

  // Exercise every mutator; after each one the cache must flush on the
  // next lookup (size drops back to the one freshly compiled group).
  Rng rng(7);
  const std::vector<std::function<void()>> mutations = {
      [&] {
        ASSERT_TRUE(
            meta.AddConcept("NewConcept", "gene", {{"gid"}}).ok());
      },
      [&] { meta.AddTableAlias("gene", "locus"); },
      [&] { meta.AddColumnAlias("gene", "gid", "gene identifier"); },
      [&] {
        ASSERT_TRUE(
            meta.SetColumnPattern("gene", "gid", "[A-Z]+[0-9]+").ok());
      },
      [&] {
        ASSERT_TRUE(
            meta.SetColumnOntology("gene", "gid", {"jw0001", "jw0002"}).ok());
      },
      [&] {
        ASSERT_TRUE(meta.DrawColumnSamples((*ds)->catalog, 5, &rng).ok());
      },
  };
  for (size_t m = 0; m < mutations.size(); ++m) {
    (void)cache.GetOrCompileGroup(engine, queries);
    const size_t warm = cache.size();
    EXPECT_GT(warm, 0u) << "mutation " << m;
    // A second warm lookup keeps the entries (no spurious invalidation).
    (void)cache.GetOrCompileGroup(engine, queries);
    EXPECT_EQ(cache.size(), warm) << "mutation " << m;

    const uint64_t before = meta.version();
    mutations[m]();
    EXPECT_EQ(meta.version(), before + 1) << "mutation " << m;

    // The flush happens on the next lookup: stale entries are dropped and
    // exactly this group's fresh plans remain.
    const auto plans = cache.GetOrCompileGroup(engine, queries);
    EXPECT_EQ(plans.size(), queries.size());
    EXPECT_LE(cache.size(), warm) << "mutation " << m;
  }

  // Changing the engine's search knobs invalidates too.
  (void)cache.GetOrCompileGroup(engine, queries);
  engine.params().min_mapping_score = 0.55;
  const size_t before_entries = cache.size();
  (void)cache.GetOrCompileGroup(engine, queries);
  EXPECT_LE(cache.size(), before_entries);
}

// §5.2.2: a full {table, column, value} context (Type-1) must reward a
// value mapping more than {table, value} (Type-2), which must reward it
// more than {column, value} (Type-3) — because beta1 > beta2 > beta3.
TEST(ContextRewardOrdering, TypeOneBeatsTypeTwoBeatsTypeThree) {
  const ContextAdjustParams params;  // defaults: 0.30 / 0.20 / 0.10
  ASSERT_GT(params.beta1, params.beta2);
  ASSERT_GT(params.beta2, params.beta3);
  const double base = 0.5;  // below 1/(1+beta1): the clamp never hides order

  auto word = [](const std::string& text, size_t pos,
                 std::vector<WordMapping> mappings) {
    SigWord w;
    w.token = Token{text, ToLower(text), pos, 0};
    w.mappings = std::move(mappings);
    return w;
  };
  const WordMapping table_map{WordMapping::Kind::kTable, "gene", "", 0.9};
  const WordMapping column_map{WordMapping::Kind::kColumn, "gene", "gid",
                               0.8};
  const WordMapping value_map{WordMapping::Kind::kValue, "gene", "gid",
                              base};

  SignatureMap type1;  // gene gid JW0001
  type1.words = {word("gene", 0, {table_map}), word("gid", 1, {column_map}),
                 word("JW0001", 2, {value_map})};
  SignatureMap type2;  // gene .. JW0001
  type2.words = {word("gene", 0, {table_map}), word("the", 1, {}),
                 word("JW0001", 2, {value_map})};
  SignatureMap type3;  // .. gid JW0001
  type3.words = {word("the", 0, {}), word("gid", 1, {column_map}),
                 word("JW0001", 2, {value_map})};

  ContextBasedAdjustment(&type1, params);
  ContextBasedAdjustment(&type2, params);
  ContextBasedAdjustment(&type3, params);

  const double w1 = type1.words[2].mappings[0].weight;
  const double w2 = type2.words[2].mappings[0].weight;
  const double w3 = type3.words[2].mappings[0].weight;
  EXPECT_NEAR(w1, base * (1 + params.beta1), 1e-12);
  EXPECT_NEAR(w2, base * (1 + params.beta2), 1e-12);
  EXPECT_NEAR(w3, base * (1 + params.beta3), 1e-12);
  EXPECT_GT(w1, w2);
  EXPECT_GT(w2, w3);
  EXPECT_GT(w3, base);
}

}  // namespace
}  // namespace nebula
