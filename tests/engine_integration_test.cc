#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "annotation/quality.h"
#include "common/random.h"
#include "core/bounds_setting.h"
#include "core/engine.h"
#include "core/focal_spreading.h"
#include "core/identify.h"
#include "storage/schema.h"
#include "workload/generator.h"
#include "workload/oracle.h"
#include "workload/spec.h"

namespace nebula {
namespace {

/// End-to-end tests over a shared Tiny dataset: insert held-out workload
/// annotations through the full Nebula pipeline and check the discovered
/// attachments against ground truth.
class EngineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = GenerateBioDataset(DatasetSpec::Tiny());
    ASSERT_TRUE(result.ok());
    dataset_ = result->release();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  std::unique_ptr<NebulaEngine> MakeEngine(NebulaConfig config = {}) {
    auto engine = std::make_unique<NebulaEngine>(
        &dataset_->catalog, &dataset_->store, &dataset_->meta, config);
    engine->RebuildAcg();
    return engine;
  }

  /// Ground-truth edge set for a workload annotation inserted as `id`.
  static EdgeSet IdealFor(AnnotationId id, const WorkloadAnnotation& wa) {
    EdgeSet ideal;
    for (const TupleId& t : wa.ideal_tuples) ideal.Add(id, t);
    return ideal;
  }

  static BioDataset* dataset_;
};

BioDataset* EngineIntegrationTest::dataset_ = nullptr;

TEST_F(EngineIntegrationTest, DiscoverDoesNotMutateState) {
  auto engine = MakeEngine();
  const size_t annotations_before = dataset_->store.num_annotations();
  const size_t edges_before = dataset_->store.num_attachments();

  const AnnotationId existing = 0;
  const auto focal = dataset_->store.AttachedTuples(existing, true);
  ASSERT_FALSE(focal.empty());
  auto report = engine->Discover(existing, focal);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(dataset_->store.num_annotations(), annotations_before);
  EXPECT_EQ(dataset_->store.num_attachments(), edges_before);
  EXPECT_TRUE(engine->verification().tasks().empty());
}

TEST_F(EngineIntegrationTest, WorkloadAnnotationsRecoverGroundTruth) {
  NebulaConfig config;
  config.generation.epsilon = 0.6;
  config.bounds = {0.2, 0.9};
  auto engine = MakeEngine(config);

  size_t total_ideal = 0;
  size_t recovered = 0;
  // Use the 100-byte class: compact but fully-specified references.
  for (size_t idx : dataset_->workload.BySizeClass(100)) {
    const WorkloadAnnotation& wa = dataset_->workload.annotations[idx];
    const std::vector<TupleId> focal{wa.ideal_tuples.front()};
    auto report = engine->InsertAnnotation(wa.text, focal, "test");
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // Every remaining ideal tuple should appear among the candidates.
    for (size_t i = 1; i < wa.ideal_tuples.size(); ++i) {
      ++total_ideal;
      for (const auto& c : report->candidates) {
        if (c.tuple == wa.ideal_tuples[i]) {
          ++recovered;
          break;
        }
      }
    }
  }
  ASSERT_GT(total_ideal, 0u);
  // Discovery (pre-verification) must surface nearly all true references.
  EXPECT_GE(static_cast<double>(recovered) / total_ideal, 0.95)
      << recovered << "/" << total_ideal;
}

TEST_F(EngineIntegrationTest, OracleDrivenPipelineImprovesDatabase) {
  NebulaConfig config;
  config.bounds = {0.25, 0.9};
  auto engine = MakeEngine(config);

  const WorkloadAnnotation* chosen = nullptr;
  for (size_t idx : dataset_->workload.BySizeClass(500)) {
    if (dataset_->workload.annotations[idx].ideal_tuples.size() >= 2) {
      chosen = &dataset_->workload.annotations[idx];
      break;
    }
  }
  ASSERT_NE(chosen, nullptr);
  const WorkloadAnnotation& wa = *chosen;
  const std::vector<TupleId> focal{wa.ideal_tuples.front()};
  auto report = engine->InsertAnnotation(wa.text, focal, "oracle");
  ASSERT_TRUE(report.ok());

  const EdgeSet ideal = IdealFor(report->annotation, wa);
  OracleExpert oracle(&ideal);
  oracle.ProcessPending(&engine->verification());

  // After the oracle pass, the annotation's edges should cover most of
  // the ground truth without many spurious edges.
  const auto attached = dataset_->store.AttachedTuples(report->annotation);
  size_t correct = 0;
  for (const TupleId& t : attached) {
    if (ideal.Contains(report->annotation, t)) ++correct;
  }
  EXPECT_GE(correct, wa.ideal_tuples.size() - 1);
  // Spurious True edges can only come from wrong auto-accepts.
  const double precision =
      static_cast<double>(correct) / static_cast<double>(attached.size());
  EXPECT_GE(precision, 0.7);
}

TEST_F(EngineIntegrationTest, FocalSpreadingPathProducesSubsetOfFull) {
  // Feed the profile + force stability off-switch so approximation runs.
  NebulaConfig approx_config;
  approx_config.enable_focal_spreading = true;
  approx_config.spreading.require_stable_acg = false;
  approx_config.spreading.selection = KSelection::kFixed;
  approx_config.spreading.fixed_k = 3;
  auto approx_engine = MakeEngine(approx_config);
  auto full_engine = MakeEngine();

  const WorkloadAnnotation& wa =
      dataset_->workload.annotations[dataset_->workload.BySizeClass(100)[1]];
  const AnnotationId id = dataset_->store.AddAnnotation(wa.text, "t");
  for (const TupleId& t : wa.ideal_tuples) {
    ASSERT_TRUE(dataset_->store.Attach(id, t).ok());
  }
  // Rebuild so the focal is connected in both engines' graphs.
  approx_engine->RebuildAcg();
  full_engine->RebuildAcg();
  const std::vector<TupleId> focal{wa.ideal_tuples.front()};

  auto approx = approx_engine->Discover(id, focal);
  auto full = full_engine->Discover(id, focal);
  ASSERT_TRUE(approx.ok() && full.ok());
  EXPECT_EQ(approx->mode, SearchMode::kFocalSpreading);
  EXPECT_EQ(full->mode, SearchMode::kFullDatabase);
  EXPECT_GT(approx->mini_db_size, 0u);
  // Approximate candidates are a subset of full candidates (as tuples).
  EXPECT_LE(approx->candidates.size(), full->candidates.size());
  for (const auto& c : approx->candidates) {
    bool found = false;
    for (const auto& f : full->candidates) {
      if (f.tuple == c.tuple) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(EngineIntegrationTest, UnstableAcgFallsBackToFullSearch) {
  NebulaConfig config;
  config.enable_focal_spreading = true;  // stability required (default)
  auto engine = MakeEngine(config);
  ASSERT_FALSE(engine->acg().stable());
  const WorkloadAnnotation& wa =
      dataset_->workload.annotations[dataset_->workload.BySizeClass(100)[2]];
  auto report =
      engine->InsertAnnotation(wa.text, {wa.ideal_tuples.front()}, "t");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mode, SearchMode::kFullDatabase);
}

TEST_F(EngineIntegrationTest, InsertAttachesFocalAsTrueEdges) {
  auto engine = MakeEngine();
  const WorkloadAnnotation& wa =
      dataset_->workload.annotations[dataset_->workload.BySizeClass(50)[0]];
  const std::vector<TupleId> focal{wa.ideal_tuples.front()};
  auto report = engine->InsertAnnotation(wa.text, focal, "bob");
  ASSERT_TRUE(report.ok());
  const auto tuples =
      dataset_->store.AttachedTuples(report->annotation, true);
  ASSERT_FALSE(tuples.empty());
  EXPECT_EQ(tuples.front(), focal.front());
  auto ann = dataset_->store.GetAnnotation(report->annotation);
  ASSERT_TRUE(ann.ok());
  EXPECT_EQ((*ann)->author, "bob");
  EXPECT_EQ((*ann)->text, wa.text);
}

TEST_F(EngineIntegrationTest, SpamGuardBlocksOverreachingAnnotations) {
  NebulaConfig config;
  config.enable_spam_guard = true;
  config.spam_guard.max_coverage = 0.0005;  // absurdly strict on purpose
  config.spam_guard.min_candidates = 1;
  auto engine = MakeEngine(config);
  const WorkloadAnnotation& wa =
      dataset_->workload.annotations[dataset_->workload.BySizeClass(500)[1]];
  auto report =
      engine->InsertAnnotation(wa.text, {wa.ideal_tuples.front()}, "spam");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->spam.spam_suspected);
  EXPECT_GT(report->spam.coverage, 0.0005);
  // No verification tasks were created.
  EXPECT_EQ(report->verification.auto_accepted, 0u);
  EXPECT_EQ(report->verification.pending, 0u);
  EXPECT_TRUE(engine->verification().tasks().empty());
  // The focal attachment itself still exists (the user's own action).
  EXPECT_TRUE(
      dataset_->store.HasAttachment(report->annotation,
                                    wa.ideal_tuples.front()));
}

TEST_F(EngineIntegrationTest, SpamGuardPassesNormalAnnotations) {
  NebulaConfig config;  // default guard thresholds
  auto engine = MakeEngine(config);
  const WorkloadAnnotation& wa =
      dataset_->workload.annotations[dataset_->workload.BySizeClass(50)[3]];
  auto report =
      engine->InsertAnnotation(wa.text, {wa.ideal_tuples.front()}, "ok");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->spam.spam_suspected);
}

TEST_F(EngineIntegrationTest, BoundsSettingFindsReasonableBounds) {
  auto engine = MakeEngine();
  Rng rng(11);
  const auto training = dataset_->SampleTrainingSet(15, &rng);
  ASSERT_FALSE(training.empty());

  DiscoveryFn discover = [&](AnnotationId annotation,
                             const std::vector<TupleId>& focal) {
    auto report = engine->Discover(annotation, focal);
    return report.ok() ? report->candidates : std::vector<CandidateTuple>{};
  };
  BoundsSettingConfig config;
  config.max_fn = 0.5;
  config.max_fp = 0.3;
  config.grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const BoundsSettingResult result =
      BoundsSetting(training, discover, config);
  EXPECT_FALSE(result.grid.empty());
  EXPECT_LE(result.best.lower, result.best.upper);
}

}  // namespace
}  // namespace nebula
