// Durability subsystem tests: WAL framing and torn-tail semantics,
// commit-unit encode/decode, meta serialization, snapshot protocol, and
// the snapshot+replay equivalence property — a durable engine killed
// without a final snapshot and reopened must reproduce its pre-kill
// state exactly, over random insert/verify/reject interleavings.
// Labeled "durability".

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/verification.h"
#include "durability/journal.h"
#include "durability/meta_serialize.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "meta/nebula_meta.h"
#include "testing/check_workload.h"
#include "testing/differential.h"

namespace nebula {
namespace {

namespace fs = std::filesystem;
using durability::CommitUnit;
using durability::JournalRecord;
using durability::MetaSerializer;
using durability::SnapshotInfo;
using durability::SyncMode;
using durability::TaskRecord;
using durability::WalReadResult;
using durability::WalWriter;

/// Fresh scratch directory per test, removed on teardown.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nebula_durability_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WalPath() const { return dir_ + "/wal.log"; }

  std::string dir_;
};

TEST_F(DurabilityTest, WalRoundTripsPayloads) {
  const std::vector<std::string> payloads = {
      "first", std::string(1, '\0') + "binary\tbytes\n", "", "last"};
  {
    auto writer = WalWriter::Open(WalPath(), SyncMode::kFlush);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*writer)->Append(p).ok());
    }
    EXPECT_EQ((*writer)->appends(), payloads.size());
  }
  auto read = durability::ReadWal(WalPath());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->payloads, payloads);
  EXPECT_FALSE(read->tail_truncated);
  uint64_t expected_bytes = 0;
  for (const std::string& p : payloads) {
    expected_bytes += durability::kWalHeaderBytes + p.size();
  }
  EXPECT_EQ(read->valid_bytes, expected_bytes);
  EXPECT_EQ(fs::file_size(WalPath()), expected_bytes);
}

TEST_F(DurabilityTest, WalMissingFileIsNotFound) {
  const auto read = durability::ReadWal(dir_ + "/absent.log");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(DurabilityTest, WalChecksumMismatchEndsReplayAtTheFlippedRecord) {
  const std::vector<std::string> payloads = {"alpha", "bravo", "charlie"};
  {
    auto writer = WalWriter::Open(WalPath(), SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*writer)->Append(p).ok());
    }
  }
  // Flip one payload byte of the SECOND record: everything from that
  // record on is rejected, the first record survives.
  const uint64_t second_payload_off =
      durability::kWalHeaderBytes + payloads[0].size() +
      durability::kWalHeaderBytes;
  {
    std::fstream f(WalPath(), std::ios::in | std::ios::out |
                                  std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(second_payload_off));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(second_payload_off));
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto read = durability::ReadWal(WalPath());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "alpha");
  EXPECT_TRUE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes,
            durability::kWalHeaderBytes + payloads[0].size());
}

TEST_F(DurabilityTest, WalTornFinalFrameIsDroppedNotFatal) {
  {
    auto writer = WalWriter::Open(WalPath(), SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("committed-one").ok());
    ASSERT_TRUE((*writer)->Append("committed-two").ok());
  }
  const uint64_t intact_bytes = fs::file_size(WalPath());
  // Simulate a crash mid-write: a frame header promising more bytes than
  // the file holds.
  {
    std::ofstream f(WalPath(), std::ios::binary | std::ios::app);
    const char torn[] = {char(0x40), 0, 0, 0, char(0xde), char(0xad)};
    f.write(torn, sizeof(torn));
  }
  auto read = durability::ReadWal(WalPath());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 2u);
  EXPECT_EQ(read->payloads[1], "committed-two");
  EXPECT_TRUE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, intact_bytes);
}

TEST_F(DurabilityTest, WalTruncateEmptiesTheLog) {
  auto writer = WalWriter::Open(WalPath(), SyncMode::kFlush);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("soon superseded").ok());
  ASSERT_TRUE((*writer)->Truncate().ok());
  ASSERT_TRUE((*writer)->Append("after truncate").ok());
  auto read = durability::ReadWal(WalPath());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "after truncate");
}

TEST_F(DurabilityTest, CommitUnitEncodeDecodeRoundTripsEveryKind) {
  CommitUnit unit;
  unit.seq = 42;
  unit.flags = durability::kOpStart | durability::kOpEnd;
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kAnnotation;
    r.id = 7;
    r.author = "dr\tstrange\nlove";
    r.text = "binds\tGRB2 with\nhigh affinity";
    unit.records.push_back(r);
  }
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kAttach;
    r.annotation = 7;
    r.table_id = 3;
    r.row = 91;
    r.is_true = false;
    r.weight = 0.1;  // not exactly representable: %.17g must round-trip
    unit.records.push_back(r);
  }
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kDetach;
    r.annotation = 7;
    r.table_id = 1;
    r.row = 2;
    unit.records.push_back(r);
  }
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kPromote;
    r.annotation = 7;
    r.table_id = 0;
    r.row = 15;
    unit.records.push_back(r);
  }
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kTask;
    r.id = 5;
    r.annotation = 7;
    r.table_id = 2;
    r.row = 30;
    r.weight = 1e-300;
    r.text = "AUTO_ACCEPTED";
    r.evidence = {"name match", "pattern\tmatch", ""};
    unit.records.push_back(r);
  }
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kDecision;
    r.id = 5;
    r.is_true = true;
    unit.records.push_back(r);
  }
  {
    JournalRecord r;
    r.kind = JournalRecord::Kind::kMetaBlob;
    r.text = "nebula-meta\t1\t9\nconcept fake\n";
    unit.records.push_back(r);
  }

  const std::string payload = durability::EncodeUnit(unit);
  auto decoded = durability::DecodeUnit(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, unit.seq);
  EXPECT_EQ(decoded->flags, unit.flags);
  ASSERT_EQ(decoded->records.size(), unit.records.size());
  for (size_t i = 0; i < unit.records.size(); ++i) {
    const JournalRecord& a = unit.records[i];
    const JournalRecord& b = decoded->records[i];
    EXPECT_EQ(b.kind, a.kind) << "record " << i;
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.annotation, a.annotation);
    EXPECT_EQ(b.table_id, a.table_id);
    EXPECT_EQ(b.row, a.row);
    EXPECT_EQ(b.is_true, a.is_true);
    EXPECT_EQ(b.weight, a.weight);
    EXPECT_EQ(b.text, a.text);
    EXPECT_EQ(b.author, a.author);
    EXPECT_EQ(b.evidence, a.evidence);
  }
}

TEST_F(DurabilityTest, DecodeUnitRejectsMalformedPayloads) {
  EXPECT_FALSE(durability::DecodeUnit("").ok());
  EXPECT_FALSE(durability::DecodeUnit("not-a-unit").ok());
  EXPECT_FALSE(durability::DecodeUnit("u\tnotanumber\t3").ok());
  EXPECT_FALSE(durability::DecodeUnit("u\t1\t99").ok());  // bad flags
  // Unknown record tag.
  EXPECT_FALSE(durability::DecodeUnit("u\t1\t1\nz\t1").ok());
  // kAttach with wrong arity.
  EXPECT_FALSE(durability::DecodeUnit("u\t1\t1\nt\t1\t2").ok());
  // A valid encode must survive its own decode (baseline sanity).
  CommitUnit unit;
  unit.seq = 1;
  unit.flags = durability::kOpEnd;
  EXPECT_TRUE(durability::DecodeUnit(durability::EncodeUnit(unit)).ok());
}

TEST_F(DurabilityTest, MetaSerializerRoundTripsACheckUniverseMeta) {
  auto universe = check::BuildCheckUniverse(17);
  ASSERT_TRUE(universe.ok());
  const NebulaMeta& meta = (*universe)->meta;
  const std::string blob = MetaSerializer::SaveToString(meta);
  ASSERT_FALSE(blob.empty());

  NebulaMeta loaded(meta.lexicon());
  ASSERT_TRUE(MetaSerializer::LoadFromString(blob, &loaded).ok());
  EXPECT_EQ(loaded.version(), meta.version());
  // Canonical encoding: identical metadata must re-serialize to the
  // identical blob (this is what snapshot/WAL equality tests key on).
  EXPECT_EQ(MetaSerializer::SaveToString(loaded), blob);

  // A non-fresh target is a programming error, reported not asserted.
  EXPECT_FALSE(MetaSerializer::LoadFromString(blob, &loaded).ok());
}

TEST_F(DurabilityTest, SnapshotWriteLoadRoundTrip) {
  auto universe = check::BuildCheckUniverse(9);
  ASSERT_TRUE(universe.ok());
  SnapshotInfo info;
  info.seq = 12;
  info.committed_ops = 5;
  TaskRecord task;
  task.vid = 0;
  task.annotation = 3;
  task.table_id = 1;
  task.row = 8;
  task.confidence = 0.625;
  task.state = "PENDING";
  task.evidence = {"exact name", "sample"};
  info.tasks.push_back(task);
  ASSERT_TRUE(durability::WriteSnapshot(dir_, info, (*universe)->store,
                                        (*universe)->meta)
                  .ok());

  AnnotationStore store;
  NebulaMeta meta((*universe)->meta.lexicon());
  auto loaded = durability::LoadCurrentSnapshot(dir_, &store, &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seq, info.seq);
  EXPECT_EQ(loaded->committed_ops, info.committed_ops);
  EXPECT_FALSE(loaded->partial_op);
  ASSERT_EQ(loaded->tasks.size(), 1u);
  EXPECT_EQ(loaded->tasks[0].vid, task.vid);
  EXPECT_EQ(loaded->tasks[0].confidence, task.confidence);
  EXPECT_EQ(loaded->tasks[0].state, task.state);
  EXPECT_EQ(loaded->tasks[0].evidence, task.evidence);

  ASSERT_EQ(store.num_annotations(), (*universe)->store.num_annotations());
  const auto original = (*universe)->store.AllAttachments();
  const auto recovered = store.AllAttachments();
  ASSERT_EQ(recovered.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(recovered[i].annotation, original[i].annotation);
    EXPECT_EQ(recovered[i].tuple, original[i].tuple);
    EXPECT_EQ(recovered[i].type, original[i].type);
    EXPECT_EQ(recovered[i].weight, original[i].weight);
  }
  EXPECT_EQ(MetaSerializer::SaveToString(meta),
            MetaSerializer::SaveToString((*universe)->meta));
}

TEST_F(DurabilityTest, SnapshotSupersedesAndGarbageCollects) {
  auto universe = check::BuildCheckUniverse(9);
  ASSERT_TRUE(universe.ok());
  SnapshotInfo info;
  info.seq = 1;
  ASSERT_TRUE(durability::WriteSnapshot(dir_, info, (*universe)->store,
                                        (*universe)->meta)
                  .ok());
  info.seq = 2;
  info.committed_ops = 1;
  ASSERT_TRUE(durability::WriteSnapshot(dir_, info, (*universe)->store,
                                        (*universe)->meta)
                  .ok());
  EXPECT_TRUE(fs::exists(dir_ + "/snapshot-2"));
  EXPECT_FALSE(fs::exists(dir_ + "/snapshot-1"));
  AnnotationStore store;
  NebulaMeta meta((*universe)->meta.lexicon());
  auto loaded = durability::LoadCurrentSnapshot(dir_, &store, &meta);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seq, 2u);
  EXPECT_EQ(loaded->committed_ops, 1u);
}

TEST_F(DurabilityTest, LoadFromEmptyDirIsNotFound) {
  AnnotationStore store;
  NebulaMeta meta;
  const auto loaded = durability::LoadCurrentSnapshot(dir_, &store, &meta);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(DurabilityTest, EngineFreshOpenThenIdleReopenRecoversBaseline) {
  NebulaConfig config;
  config.trace_capacity = 0;
  config.event_capacity = 0;
  config.durability_dir = dir_;
  std::vector<std::string> before;
  {
    auto universe = check::BuildCheckUniverse(4);
    ASSERT_TRUE(universe.ok());
    NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                        &(*universe)->meta, config);
    engine.RebuildAcg();
    ASSERT_TRUE(engine.OpenDurability().ok());
    EXPECT_FALSE(engine.recovery_info().recovered);
    EXPECT_TRUE(fs::exists(dir_ + "/CURRENT"));
    check::AppendStateLines((*universe)->store, engine, &before);
  }
  auto universe = check::BuildCheckUniverse(4);
  ASSERT_TRUE(universe.ok());
  NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                      &(*universe)->meta, config);
  ASSERT_TRUE(engine.OpenDurability().ok());
  EXPECT_TRUE(engine.recovery_info().recovered);
  EXPECT_EQ(engine.recovery_info().committed_ops, 0u);
  EXPECT_FALSE(engine.recovery_info().partial_op);
  std::vector<std::string> after;
  check::AppendStateLines((*universe)->store, engine, &after);
  EXPECT_EQ(after, before);
}

TEST_F(DurabilityTest, EngineOpenRejectsWalWithoutSnapshot) {
  {
    auto writer = WalWriter::Open(WalPath(), SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("orphan").ok());
  }
  auto universe = check::BuildCheckUniverse(4);
  ASSERT_TRUE(universe.ok());
  NebulaConfig config;
  config.trace_capacity = 0;
  config.durability_dir = dir_;
  NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                      &(*universe)->meta, config);
  engine.RebuildAcg();
  const Status status = engine.OpenDurability();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

/// The tentpole property: over random interleavings of inserts and
/// expert verify/reject decisions, at every snapshot cadence (every op,
/// every third op, WAL-only), killing the engine without a final
/// snapshot and reopening must reproduce the exact pre-kill state —
/// attachments, tasks (vids, confidences, states), and ACG fingerprint.
TEST_F(DurabilityTest, SnapshotPlusReplayEquivalenceOverInterleavings) {
  for (const uint64_t seed : {21u, 22u, 23u}) {
    for (const size_t snapshot_every : {size_t{1}, size_t{3}, size_t{0}}) {
      const std::string case_dir =
          dir_ + "/case_" + std::to_string(seed) + "_" +
          std::to_string(snapshot_every);
      NebulaConfig config;
      config.trace_capacity = 0;
      config.event_capacity = 0;
      config.durability_dir = case_dir;
      config.snapshot_every_n = snapshot_every;

      std::vector<std::string> before;
      {
        auto universe = check::BuildCheckUniverse(seed);
        ASSERT_TRUE(universe.ok());
        const check::CheckWorkload workload =
            check::GenerateCheckWorkload(seed, **universe);
        NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                            &(*universe)->meta, config);
        engine.RebuildAcg();
        ASSERT_TRUE(engine.OpenDurability().ok());
        Rng rng(seed * 977);
        for (const check::CheckAnnotation& a : workload.annotations) {
          auto report = engine.InsertAnnotation(a.text, a.focal, a.author);
          ASSERT_TRUE(report.ok()) << report.status().ToString();
          // Randomly interleave expert decisions over pending tasks.
          for (const VerificationTask& task :
               engine.verification().tasks()) {
            if (task.state != TaskState::kPending) continue;
            const uint64_t draw = rng.Uniform(4);
            if (draw == 0) {
              ASSERT_TRUE(engine.verification().Verify(task.vid).ok());
            } else if (draw == 1) {
              ASSERT_TRUE(engine.verification().Reject(task.vid).ok());
            }
          }
        }
        engine.RebuildAcg();
        check::AppendStateLines((*universe)->store, engine, &before);
        // Engine destroyed here WITHOUT a final snapshot: whatever the
        // cadence left in the WAL must carry the rest.
      }

      auto universe = check::BuildCheckUniverse(seed);
      ASSERT_TRUE(universe.ok());
      NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                          &(*universe)->meta, config);
      ASSERT_TRUE(engine.OpenDurability().ok());
      EXPECT_TRUE(engine.recovery_info().recovered);
      EXPECT_FALSE(engine.recovery_info().partial_op);
      std::vector<std::string> after;
      check::AppendStateLines((*universe)->store, engine, &after);
      EXPECT_EQ(after, before)
          << "seed=" << seed << " snapshot_every=" << snapshot_every;
      if (snapshot_every == 0) {
        // WAL-only: nothing beyond the baseline snapshot was written.
        EXPECT_EQ(engine.recovery_info().snapshot_seq, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace nebula
