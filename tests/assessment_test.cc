#include <gtest/gtest.h>

#include "annotation/quality.h"
#include "core/assessment.h"
#include "core/identify.h"
#include "core/verification.h"
#include "storage/schema.h"

namespace nebula {
namespace {

const TupleId kF0{0, 0};
const TupleId kT1{0, 1};
const TupleId kT2{0, 2};
const TupleId kT3{0, 3};
const TupleId kT4{0, 4};

CandidateTuple Candidate(const TupleId& t, double conf) {
  CandidateTuple c;
  c.tuple = t;
  c.confidence = conf;
  return c;
}

TEST(ComputeAssessmentTest, PerfectPrediction) {
  AssessmentCounts c;
  c.n_ideal = 4;
  c.n_focal = 1;
  c.n_accept_t = 3;
  const AssessmentResult r = ComputeAssessment(c);
  EXPECT_DOUBLE_EQ(r.fn, 0.0);
  EXPECT_DOUBLE_EQ(r.fp, 0.0);
  EXPECT_DOUBLE_EQ(r.mf, 0.0);
  EXPECT_DOUBLE_EQ(r.mh, 0.0);
}

TEST(ComputeAssessmentTest, FalseNegativeFormula) {
  AssessmentCounts c;
  c.n_ideal = 10;
  c.n_focal = 1;
  c.n_accept_t = 2;
  c.n_verify_t = 3;
  // F_N = (10 - (3 + 2 + 1)) / 10
  EXPECT_DOUBLE_EQ(ComputeAssessment(c).fn, 0.4);
}

TEST(ComputeAssessmentTest, FalsePositiveFormula) {
  AssessmentCounts c;
  c.n_ideal = 5;
  c.n_focal = 1;
  c.n_verify_t = 2;
  c.n_accept_t = 1;
  c.n_accept_f = 2;
  // F_P = accept_f / (verify_t + accept + focal) = 2 / (2 + 3 + 1)
  EXPECT_DOUBLE_EQ(ComputeAssessment(c).fp, 2.0 / 6.0);
}

TEST(ComputeAssessmentTest, ManualEffortAndHitRatio) {
  AssessmentCounts c;
  c.n_ideal = 5;
  c.n_verify_t = 3;
  c.n_verify_f = 9;
  const AssessmentResult r = ComputeAssessment(c);
  EXPECT_DOUBLE_EQ(r.mf, 12.0);
  EXPECT_DOUBLE_EQ(r.mh, 0.25);
}

TEST(ComputeAssessmentTest, ZeroDenominatorsAreSafe) {
  const AssessmentResult r = ComputeAssessment(AssessmentCounts{});
  EXPECT_DOUBLE_EQ(r.fn, 0.0);
  EXPECT_DOUBLE_EQ(r.fp, 0.0);
  EXPECT_DOUBLE_EQ(r.mh, 0.0);
}

TEST(ComputeAssessmentTest, FnClampedAtZero) {
  // Found more than ideal (possible when focal exceeds the recorded
  // ideal set in degenerate setups): F_N must not go negative.
  AssessmentCounts c;
  c.n_ideal = 1;
  c.n_focal = 2;
  EXPECT_DOUBLE_EQ(ComputeAssessment(c).fn, 0.0);
}

TEST(AssessPredictionTest, BucketsAgainstGroundTruth) {
  EdgeSet ideal;
  ideal.Add(7, kF0);
  ideal.Add(7, kT1);  // will be auto-accepted (correct)
  ideal.Add(7, kT2);  // will be pending (correct -> verify_t)
  // kT3 not ideal: pending -> verify_f; kT4 not ideal: rejected.
  const VerificationBounds bounds{0.3, 0.8};
  const AssessmentCounts c = AssessPrediction(
      7,
      {Candidate(kT1, 0.9), Candidate(kT2, 0.5), Candidate(kT3, 0.6),
       Candidate(kT4, 0.1)},
      {kF0}, ideal, bounds);
  EXPECT_EQ(c.n_ideal, 3u);
  EXPECT_EQ(c.n_focal, 1u);
  EXPECT_EQ(c.n_accept_t, 1u);
  EXPECT_EQ(c.n_accept_f, 0u);
  EXPECT_EQ(c.n_verify_t, 1u);
  EXPECT_EQ(c.n_verify_f, 1u);
  EXPECT_EQ(c.n_reject, 1u);

  const AssessmentResult r = ComputeAssessment(c);
  EXPECT_DOUBLE_EQ(r.fn, 0.0);   // all 3 ideal edges covered
  EXPECT_DOUBLE_EQ(r.fp, 0.0);   // nothing wrong auto-accepted
  EXPECT_DOUBLE_EQ(r.mf, 2.0);
  EXPECT_DOUBLE_EQ(r.mh, 0.5);
}

TEST(AssessPredictionTest, WrongAutoAcceptCountsAsAcceptF) {
  EdgeSet ideal;
  ideal.Add(7, kF0);
  const AssessmentCounts c = AssessPrediction(
      7, {Candidate(kT1, 0.95)}, {kF0}, ideal, {0.3, 0.8});
  EXPECT_EQ(c.n_accept_f, 1u);
  EXPECT_GT(ComputeAssessment(c).fp, 0.0);
}

TEST(AssessPredictionTest, FocalCandidatesNotCounted) {
  EdgeSet ideal;
  ideal.Add(7, kF0);
  const AssessmentCounts c = AssessPrediction(
      7, {Candidate(kF0, 0.99)}, {kF0}, ideal, {0.3, 0.8});
  EXPECT_EQ(c.n_accept(), 0u);
  EXPECT_EQ(c.n_verify(), 0u);
  EXPECT_EQ(c.n_reject, 0u);
}

TEST(AssessPredictionTest, MissedReferenceShowsAsFn) {
  EdgeSet ideal;
  ideal.Add(7, kF0);
  ideal.Add(7, kT1);
  ideal.Add(7, kT2);
  // Discovery produced nothing for kT2.
  const AssessmentCounts c = AssessPrediction(
      7, {Candidate(kT1, 0.9)}, {kF0}, ideal, {0.3, 0.8});
  EXPECT_NEAR(ComputeAssessment(c).fn, 1.0 / 3.0, 1e-9);
}

TEST(AssessPredictionTest, DegenerateEqualBoundsEliminateExperts) {
  // beta_lower == beta_upper == 0.5: nothing pends; everything >= 0.5 is
  // accepted (0.5 itself remains a pending edge case per Fig. 8 -> here
  // confidence==bounds goes to verify; use strictly-off values).
  EdgeSet ideal;
  ideal.Add(7, kT1);
  const AssessmentCounts c = AssessPrediction(
      7, {Candidate(kT1, 0.6), Candidate(kT2, 0.4)}, {}, ideal, {0.5, 0.5});
  EXPECT_EQ(c.n_accept_t, 1u);
  EXPECT_EQ(c.n_reject, 1u);
  EXPECT_EQ(c.n_verify(), 0u);
  EXPECT_DOUBLE_EQ(ComputeAssessment(c).mf, 0.0);
}

TEST(AssessmentCountsTest, Accumulation) {
  AssessmentCounts a;
  a.n_ideal = 2;
  a.n_verify_t = 1;
  AssessmentCounts b;
  b.n_ideal = 3;
  b.n_accept_f = 2;
  a += b;
  EXPECT_EQ(a.n_ideal, 5u);
  EXPECT_EQ(a.n_verify_t, 1u);
  EXPECT_EQ(a.n_accept_f, 2u);
  EXPECT_EQ(a.n_accept(), 2u);
  EXPECT_EQ(a.n_verify(), 1u);
}

}  // namespace
}  // namespace nebula
