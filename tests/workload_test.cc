#include <gtest/gtest.h>

#include <unordered_set>

#include "annotation/annotation_store.h"
#include "annotation/quality.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/acg.h"
#include "core/identify.h"
#include "core/verification.h"
#include "meta/nebula_meta.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "text/pattern.h"
#include "workload/generator.h"
#include "workload/oracle.h"
#include "workload/spec.h"
#include "workload/vocab.h"

namespace nebula {
namespace {

/// One Tiny dataset shared by all tests in this file (generation is the
/// expensive part).
class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = GenerateBioDataset(DatasetSpec::Tiny());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = result->release();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static BioDataset* dataset_;
};

BioDataset* WorkloadTest::dataset_ = nullptr;

TEST_F(WorkloadTest, TableSizesMatchSpec) {
  const DatasetSpec spec = DatasetSpec::Tiny();
  EXPECT_EQ(dataset_->catalog.GetTableById(dataset_->gene_table)->num_rows(),
            spec.num_genes);
  EXPECT_EQ(
      dataset_->catalog.GetTableById(dataset_->protein_table)->num_rows(),
      spec.num_proteins);
  EXPECT_EQ(
      dataset_->catalog.GetTableById(dataset_->publication_table)->num_rows(),
      spec.num_publications);
  EXPECT_EQ(dataset_->store.num_annotations(), spec.num_publications);
}

TEST_F(WorkloadTest, GeneValuesFollowDeclaredPatterns) {
  const Table* gene = dataset_->catalog.GetTableById(dataset_->gene_table);
  auto gid_pattern = ValuePattern::Compile("JW[0-9]{5}");
  auto name_pattern = ValuePattern::Compile("[a-z]{3}[A-Z]");
  ASSERT_TRUE(gid_pattern.ok());
  for (Table::RowId r = 0; r < std::min<uint64_t>(gene->num_rows(), 200);
       ++r) {
    EXPECT_TRUE(gid_pattern->Matches(gene->GetCell(r, 0).AsString()));
    EXPECT_TRUE(name_pattern->Matches(gene->GetCell(r, 1).AsString()));
  }
}

TEST_F(WorkloadTest, IdentifiersUniqueAndPnamesDistinct) {
  const Table* gene = dataset_->catalog.GetTableById(dataset_->gene_table);
  const Table* protein =
      dataset_->catalog.GetTableById(dataset_->protein_table);
  EXPECT_EQ(gene->DistinctCount(0), gene->num_rows());
  EXPECT_EQ(gene->DistinctCount(1), gene->num_rows());
  EXPECT_EQ(protein->DistinctCount(0), protein->num_rows());
  // pname distinctness (first pass stems + suffixed later passes).
  EXPECT_EQ(protein->DistinctCount(1), protein->num_rows());
}

TEST_F(WorkloadTest, ProteinFkPointsAtExistingGene) {
  const Table* gene = dataset_->catalog.GetTableById(dataset_->gene_table);
  const Table* protein =
      dataset_->catalog.GetTableById(dataset_->protein_table);
  for (Table::RowId r = 0; r < std::min<uint64_t>(protein->num_rows(), 100);
       ++r) {
    const Value& gid = protein->GetCell(r, 4);
    EXPECT_EQ(gene->Lookup("gid", gid).size(), 1u);
  }
}

TEST_F(WorkloadTest, PublicationTextIndexesBuilt) {
  const Table* pub =
      dataset_->catalog.GetTableById(dataset_->publication_table);
  const int title = pub->schema().ColumnIndex("title");
  const int abstract = pub->schema().ColumnIndex("abstract");
  EXPECT_TRUE(pub->HasTextIndex(static_cast<size_t>(title)));
  EXPECT_TRUE(pub->HasTextIndex(static_cast<size_t>(abstract)));
}

TEST_F(WorkloadTest, CorpusAnnotationsAttachedToCitedTuples) {
  size_t with_attachments = 0;
  for (AnnotationId a = 0; a < 100; ++a) {
    const auto tuples = dataset_->store.AttachedTuples(a, true);
    if (!tuples.empty()) ++with_attachments;
    for (const TupleId& t : tuples) {
      EXPECT_TRUE(t.table_id == dataset_->gene_table ||
                  t.table_id == dataset_->protein_table);
    }
  }
  EXPECT_GT(with_attachments, 90u);
}

TEST_F(WorkloadTest, WorkloadHasAllSizeAndLinkClasses) {
  const Workload& w = dataset_->workload;
  EXPECT_EQ(w.annotations.size(), 60u);
  for (size_t m : {50u, 100u, 500u, 1000u}) {
    EXPECT_EQ(w.BySizeClass(m).size(), 15u) << "L^" << m;
  }
  // Footnote-3 substitution: no 7-10 class at 50 bytes, extras instead.
  EXPECT_TRUE(w.ByClasses(50, 7, 10).empty());
  EXPECT_EQ(w.ByClasses(50, 1, 3).size(), 8u);
  EXPECT_EQ(w.ByClasses(50, 4, 6).size(), 7u);
  EXPECT_EQ(w.ByClasses(1000, 7, 10).size(), 5u);
}

TEST_F(WorkloadTest, AnnotationsRespectByteBudget) {
  for (const auto& a : dataset_->workload.annotations) {
    EXPECT_LE(a.text.size(), a.size_class + 16)
        << "annotation exceeds its size class " << a.size_class;
  }
}

TEST_F(WorkloadTest, ReferenceCountsWithinLinkClass) {
  for (const auto& a : dataset_->workload.annotations) {
    EXPECT_GE(a.refs.size(), a.link_class_lo);
    EXPECT_LE(a.refs.size(), a.link_class_hi);
    EXPECT_EQ(a.refs.size(), a.ideal_tuples.size());
  }
}

TEST_F(WorkloadTest, GroundTruthSurfacesMatchDatabaseValues) {
  const Table* gene = dataset_->catalog.GetTableById(dataset_->gene_table);
  const Table* protein =
      dataset_->catalog.GetTableById(dataset_->protein_table);
  for (const auto& a : dataset_->workload.annotations) {
    for (const auto& ref : a.refs) {
      ASSERT_FALSE(ref.surface.empty());
      // The first surface keyword must literally appear in the text.
      EXPECT_NE(a.text.find(ref.surface[0]), std::string::npos);
      // And must equal one of the target tuple's cell values.
      const Table* table =
          ref.target.table_id == dataset_->gene_table ? gene : protein;
      bool found = false;
      const auto& row = table->GetRow(ref.target.row);
      for (const auto& cell : row) {
        if (cell.is_string() && cell.AsString() == ref.surface[0]) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "surface '" << ref.surface[0]
                         << "' not a value of its target tuple";
    }
  }
}

TEST_F(WorkloadTest, MediumStrengthReferencesExist) {
  size_t medium = 0, strong = 0;
  for (const auto& a : dataset_->workload.annotations) {
    for (const auto& ref : a.refs) {
      if (ref.strength == RefStrength::kMedium) {
        ++medium;
      } else {
        ++strong;
      }
    }
  }
  EXPECT_GT(medium, 0u);
  EXPECT_GT(strong, medium);  // strong must dominate
}

TEST_F(WorkloadTest, CalibratedPoolsAreInBand) {
  const ValueColumn* pname =
      dataset_->meta.FindValueColumn("protein", "pname");
  ASSERT_NE(pname, nullptr);
  size_t checked = 0;
  for (const auto& w : dataset_->weak_noise_pool) {
    if (checked++ >= 50) break;
    double best = 0.0;
    for (const auto& vc : dataset_->meta.value_columns()) {
      best = std::max(best, dataset_->meta.DomainMatchScore(w, vc));
    }
    EXPECT_GE(best, 0.4) << w;
    EXPECT_LT(best, 0.6) << w;
  }
  EXPECT_FALSE(dataset_->weak_noise_pool.empty());
}

TEST_F(WorkloadTest, DecoysMatchPatternsButMissFromDb) {
  const Table* gene = dataset_->catalog.GetTableById(dataset_->gene_table);
  const Table* protein =
      dataset_->catalog.GetTableById(dataset_->protein_table);
  for (size_t i = 0; i < std::min<size_t>(dataset_->decoy_pool.size(), 50);
       ++i) {
    const std::string& d = dataset_->decoy_pool[i];
    EXPECT_TRUE(gene->Lookup("gid", Value(d)).empty());
    EXPECT_TRUE(protein->Lookup("pid", Value(d)).empty());
  }
}

TEST_F(WorkloadTest, StrongAndMediumPnameBucketsCalibrated) {
  const ValueColumn* pname =
      dataset_->meta.FindValueColumn("protein", "pname");
  for (size_t i = 0; i < std::min<size_t>(dataset_->strong_pnames.size(), 30);
       ++i) {
    EXPECT_GE(
        dataset_->meta.DomainMatchScore(dataset_->strong_pnames[i], *pname),
        0.8);
  }
  for (size_t i = 0; i < std::min<size_t>(dataset_->medium_pnames.size(), 30);
       ++i) {
    const double s =
        dataset_->meta.DomainMatchScore(dataset_->medium_pnames[i], *pname);
    EXPECT_GE(s, 0.6);
    EXPECT_LT(s, 0.8);
  }
}

TEST_F(WorkloadTest, TrainingSetSamplesHaveIdealTuples) {
  Rng rng(5);
  const auto training = dataset_->SampleTrainingSet(20, &rng);
  EXPECT_GT(training.size(), 10u);
  for (const auto& ta : training) {
    EXPECT_FALSE(ta.ideal_tuples.empty());
    EXPECT_LT(ta.annotation, dataset_->store.num_annotations());
  }
}

TEST_F(WorkloadTest, CorpusIdealEdgesMatchStore) {
  const EdgeSet ideal = dataset_->CorpusIdealEdges();
  EXPECT_EQ(ideal.size(), dataset_->store.num_attachments());
}

TEST(WorkloadDeterminismTest, SameSeedSameDataset) {
  DatasetSpec spec = DatasetSpec::Tiny();
  spec.num_genes = 100;
  spec.num_proteins = 60;
  spec.num_publications = 80;
  auto a = GenerateBioDataset(spec);
  auto b = GenerateBioDataset(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  const Table* ga = (*a)->catalog.GetTableById((*a)->gene_table);
  const Table* gb = (*b)->catalog.GetTableById((*b)->gene_table);
  ASSERT_EQ(ga->num_rows(), gb->num_rows());
  for (Table::RowId r = 0; r < ga->num_rows(); ++r) {
    EXPECT_EQ(ga->GetCell(r, 0), gb->GetCell(r, 0));
    EXPECT_EQ(ga->GetCell(r, 1), gb->GetCell(r, 1));
  }
  ASSERT_EQ((*a)->workload.annotations.size(),
            (*b)->workload.annotations.size());
  for (size_t i = 0; i < (*a)->workload.annotations.size(); ++i) {
    EXPECT_EQ((*a)->workload.annotations[i].text,
              (*b)->workload.annotations[i].text);
  }
}

TEST(WorkloadDeterminismTest, DifferentSeedDifferentText) {
  DatasetSpec spec = DatasetSpec::Tiny();
  spec.num_genes = 100;
  spec.num_proteins = 60;
  spec.num_publications = 80;
  DatasetSpec spec2 = spec;
  spec2.seed = 777;
  auto a = GenerateBioDataset(spec);
  auto b = GenerateBioDataset(spec2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->workload.annotations[0].text,
            (*b)->workload.annotations[0].text);
}

// ------------------------------- vocab ---------------------------------

TEST(VocabTest, FillerAvoidsSchemaVocabulary) {
  const std::unordered_set<std::string> forbidden{
      "gene", "protein", "family", "name", "id", "type", "publication"};
  for (const auto& w : Vocab::Filler()) {
    EXPECT_EQ(forbidden.count(w), 0u) << w;
  }
  EXPECT_GT(Vocab::Filler().size(), 100u);
}

TEST(VocabTest, ProteinStemsDistinctAndCapitalized) {
  Rng rng(1);
  const auto stems = Vocab::MakeProteinStems(100, &rng);
  EXPECT_EQ(stems.size(), 100u);
  std::unordered_set<std::string> set(stems.begin(), stems.end());
  EXPECT_EQ(set.size(), 100u);
  for (const auto& s : stems) {
    EXPECT_TRUE(isupper(static_cast<unsigned char>(s[0]))) << s;
    EXPECT_GE(s.size(), 4u);
  }
}

TEST(VocabTest, DnaFragment) {
  Rng rng(1);
  const std::string dna = Vocab::DnaFragment(16, &rng);
  EXPECT_EQ(dna.size(), 16u);
  for (char c : dna) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(VocabTest, MutateChangesWord) {
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    if (Vocab::Mutate("Braktorin", &rng) != "braktorin") ++changed;
  }
  EXPECT_GT(changed, 10);
}

TEST(VocabTest, FillerPhraseWordCount) {
  Rng rng(1);
  const std::string phrase = Vocab::FillerPhrase(5, &rng);
  EXPECT_EQ(SplitWhitespace(phrase).size(), 5u);
}

// ------------------------------- oracle --------------------------------

TEST(OracleTest, AnswersPendingFromGroundTruth) {
  AnnotationStore store;
  Acg acg;
  VerificationManager manager(&store, &acg, {0.3, 0.8});
  const AnnotationId a = store.AddAnnotation("x");
  ASSERT_TRUE(store.Attach(a, {0, 0}).ok());

  EdgeSet ideal;
  ideal.Add(a, {0, 0});
  ideal.Add(a, {0, 1});  // true missing attachment
  // {0,2} is junk.
  CandidateTuple good, bad;
  good.tuple = {0, 1};
  good.confidence = 0.5;
  bad.tuple = {0, 2};
  bad.confidence = 0.5;
  manager.Submit(a, {good, bad});
  ASSERT_EQ(manager.PendingTasks().size(), 2u);

  OracleExpert oracle(&ideal);
  const OracleOutcome outcome = oracle.ProcessPending(&manager);
  EXPECT_EQ(outcome.accepted, 1u);
  EXPECT_EQ(outcome.rejected, 1u);
  EXPECT_TRUE(manager.PendingTasks().empty());
  EXPECT_TRUE(store.HasAttachment(a, {0, 1}));
  EXPECT_FALSE(store.HasAttachment(a, {0, 2}));
}

}  // namespace
}  // namespace nebula
