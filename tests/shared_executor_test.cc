#include <gtest/gtest.h>

#include "common/string_util.h"
#include "keyword/engine.h"
#include "keyword/mini_db.h"
#include "keyword/query_types.h"
#include "keyword/shared_executor.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

class SharedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"name", DataType::kString, true}}));
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(gene_
                      ->Insert({Value(StrFormat("JW%04d", i)),
                                Value(StrFormat("ab%cX", 'a' + i))})
                      .ok());
    }
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    engine_ = std::make_unique<KeywordSearchEngine>(&catalog_, &meta_);
  }

  Catalog catalog_;
  NebulaMeta meta_;
  Table* gene_ = nullptr;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

std::vector<KeywordQuery> MakeGroup() {
  return {
      {{"gene", "JW0003"}, 1.0, "q0"},
      {{"gene", "JW0003"}, 0.8, "q1"},  // duplicate content, lower weight
      {{"gene", "abcX"}, 0.9, "q2"},
      {{"JW0007"}, 0.7, "q3"},
  };
}

TEST_F(SharedExecutorTest, ResultsIdenticalToIsolatedExecution) {
  const auto queries = MakeGroup();
  std::vector<std::vector<SearchHit>> shared_results;
  SharedKeywordExecutor shared(engine_.get());
  ASSERT_TRUE(shared.ExecuteGroup(queries, &shared_results).ok());
  ASSERT_EQ(shared_results.size(), queries.size());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto isolated = *engine_->Search(queries[qi]);
    ASSERT_EQ(shared_results[qi].size(), isolated.size()) << "query " << qi;
    for (size_t h = 0; h < isolated.size(); ++h) {
      EXPECT_EQ(shared_results[qi][h].tuple, isolated[h].tuple);
      EXPECT_NEAR(shared_results[qi][h].confidence, isolated[h].confidence,
                  1e-12);
    }
  }
}

TEST_F(SharedExecutorTest, SharingReducesDistinctStatements) {
  SharedKeywordExecutor shared(engine_.get());
  std::vector<std::vector<SearchHit>> results;
  ASSERT_TRUE(shared.ExecuteGroup(MakeGroup(), &results).ok());
  EXPECT_GT(shared.stats().total_sql, shared.stats().distinct_sql);
  EXPECT_GT(shared.stats().sharing_ratio(), 0.0);
  EXPECT_LT(shared.stats().sharing_ratio(), 1.0);
}

TEST_F(SharedExecutorTest, EmptyGroup) {
  SharedKeywordExecutor shared(engine_.get());
  std::vector<std::vector<SearchHit>> results;
  ASSERT_TRUE(shared.ExecuteGroup({}, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(shared.stats().total_sql, 0u);
  EXPECT_DOUBLE_EQ(shared.stats().sharing_ratio(), 0.0);
}

TEST_F(SharedExecutorTest, RespectsMiniDb) {
  MiniDb mini;
  mini.Add({gene_->id(), 3});
  SharedKeywordExecutor shared(engine_.get());
  std::vector<std::vector<SearchHit>> results;
  ASSERT_TRUE(shared.ExecuteGroup(MakeGroup(), &results, &mini).ok());
  for (const auto& hits : results) {
    for (const auto& h : hits) EXPECT_TRUE(mini.Contains(h.tuple));
  }
}

TEST_F(SharedExecutorTest, IdenticalQueriesShareFully) {
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0001"}, 1.0, "a"},
      {{"gene", "JW0001"}, 1.0, "b"},
      {{"gene", "JW0001"}, 1.0, "c"},
  };
  SharedKeywordExecutor shared(engine_.get());
  std::vector<std::vector<SearchHit>> results;
  ASSERT_TRUE(shared.ExecuteGroup(queries, &results).ok());
  // 3 queries compile to the same statements: sharing ratio = 2/3.
  EXPECT_NEAR(shared.stats().sharing_ratio(), 2.0 / 3.0, 1e-9);
}

TEST_F(SharedExecutorTest, StatsAreReportedPerGroupNotAccumulated) {
  SharedKeywordExecutor shared(engine_.get());
  std::vector<std::vector<SearchHit>> results;
  ASSERT_TRUE(shared.ExecuteGroup(MakeGroup(), &results).ok());
  const size_t total = shared.stats().total_sql;
  const size_t distinct = shared.stats().distinct_sql;
  const double ratio = shared.stats().sharing_ratio();
  ASSERT_GT(total, 0u);

  // A second round through the same executor reports the same per-group
  // numbers — not twice them: ExecuteGroup resets on entry.
  ASSERT_TRUE(shared.ExecuteGroup(MakeGroup(), &results).ok());
  EXPECT_EQ(shared.stats().total_sql, total);
  EXPECT_EQ(shared.stats().distinct_sql, distinct);
  EXPECT_DOUBLE_EQ(shared.stats().sharing_ratio(), ratio);
}

TEST(SharedExecutionStatsTest, ResetZeroesCounters) {
  SharedExecutionStats stats;
  stats.total_sql = 10;
  stats.distinct_sql = 4;
  EXPECT_GT(stats.sharing_ratio(), 0.0);
  stats.Reset();
  EXPECT_EQ(stats.total_sql, 0u);
  EXPECT_EQ(stats.distinct_sql, 0u);
  EXPECT_DOUBLE_EQ(stats.sharing_ratio(), 0.0);
}

TEST(MiniDbTest, AddContainsSize) {
  MiniDb mini;
  EXPECT_TRUE(mini.empty());
  mini.Add({0, 1});
  mini.Add({0, 1});  // idempotent
  mini.Add({1, 2});
  EXPECT_EQ(mini.size(), 2u);
  EXPECT_TRUE(mini.Contains({0, 1}));
  EXPECT_FALSE(mini.Contains({0, 2}));
  ASSERT_NE(mini.ForTable(0), nullptr);
  EXPECT_EQ(mini.ForTable(0)->size(), 1u);
  EXPECT_EQ(mini.ForTable(9), nullptr);
}

}  // namespace
}  // namespace nebula
