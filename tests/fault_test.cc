#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace nebula {
namespace {

/// Every test leaves the registry clean — faults are process-global and
/// must never leak into other suites.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Clear(); }
  void TearDown() override { FaultRegistry::Global().Clear(); }
};

TEST_F(FaultTest, DisabledByDefault) {
  EXPECT_FALSE(FaultRegistry::Enabled());
  EXPECT_TRUE(FaultRegistry::Global().Check("storage.table.insert").ok());
  EXPECT_FALSE(FaultRegistry::Global().ShouldFail("threadpool.submit"));
  EXPECT_EQ(FaultRegistry::Global().CallCount("storage.table.insert"), 0u);
}

TEST_F(FaultTest, ArmedPointFiresWithItsStatus) {
  FaultSpec spec;
  spec.code = StatusCode::kCorruption;
  spec.message = "disk gone";
  FaultRegistry::Global().Arm("p", spec);
  EXPECT_TRUE(FaultRegistry::Enabled());
  const Status status = FaultRegistry::Global().Check("p");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The message names the point so a surfaced error is attributable.
  EXPECT_NE(status.message().find("disk gone"), std::string::npos);
  EXPECT_NE(status.message().find("p"), std::string::npos);
  // Other points stay clean.
  EXPECT_TRUE(FaultRegistry::Global().Check("q").ok());
}

TEST_F(FaultTest, SkipCallsDelaysFirstFire) {
  FaultSpec spec;
  spec.skip_calls = 3;
  FaultRegistry::Global().Arm("p", spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(FaultRegistry::Global().Check("p").ok()) << "call " << i;
  }
  EXPECT_FALSE(FaultRegistry::Global().Check("p").ok());
  EXPECT_EQ(FaultRegistry::Global().CallCount("p"), 4u);
  EXPECT_EQ(FaultRegistry::Global().FireCount("p"), 1u);
}

TEST_F(FaultTest, MaxFiresBoundsTheDamage) {
  FaultSpec spec;
  spec.max_fires = 2;
  FaultRegistry::Global().Arm("p", spec);
  EXPECT_FALSE(FaultRegistry::Global().Check("p").ok());
  EXPECT_FALSE(FaultRegistry::Global().Check("p").ok());
  EXPECT_TRUE(FaultRegistry::Global().Check("p").ok());
  EXPECT_EQ(FaultRegistry::Global().FireCount("p"), 2u);
}

TEST_F(FaultTest, ProbabilisticDrawsAreSeedDeterministic) {
  auto record = [](uint64_t seed) {
    FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    FaultRegistry::Global().Arm("p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FaultRegistry::Global().Check("p").ok());
    }
    FaultRegistry::Global().Disarm("p");
    return fired;
  };
  const auto a = record(7);
  const auto b = record(7);
  const auto c = record(8);
  EXPECT_EQ(a, b);  // same seed, same fire pattern
  EXPECT_NE(a, c);  // different seed, different pattern
  // And p=0.5 over 64 draws fires somewhere strictly between the extremes.
  const size_t fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultTest, RearmResetsCounters) {
  FaultRegistry::Global().Arm("p");
  (void)FaultRegistry::Global().Check("p");
  (void)FaultRegistry::Global().Check("p");
  EXPECT_EQ(FaultRegistry::Global().CallCount("p"), 2u);
  FaultRegistry::Global().Arm("p");
  EXPECT_EQ(FaultRegistry::Global().CallCount("p"), 0u);
  EXPECT_EQ(FaultRegistry::Global().FireCount("p"), 0u);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("p");
    EXPECT_TRUE(FaultRegistry::Enabled());
    EXPECT_FALSE(FaultRegistry::Global().Check("p").ok());
  }
  EXPECT_FALSE(FaultRegistry::Enabled());
  EXPECT_TRUE(FaultRegistry::Global().Check("p").ok());
}

TEST_F(FaultTest, InjectMacroWorksInStatusAndResultFunctions) {
  auto status_fn = []() -> Status {
    NEBULA_INJECT_FAULT("p");
    return Status::OK();
  };
  auto result_fn = []() -> Result<int> {
    NEBULA_INJECT_FAULT("p");
    return 42;
  };
  EXPECT_TRUE(status_fn().ok());
  EXPECT_EQ(result_fn().value(), 42);
  ScopedFault fault("p");
  EXPECT_FALSE(status_fn().ok());
  EXPECT_FALSE(result_fn().ok());
}

TEST_F(FaultTest, ThreadPoolSubmitDegradesToInlineExecution) {
  ThreadPool pool(2);
  // With the submit fault firing every time, tasks still run — on the
  // caller's thread — and futures still complete. No work is lost.
  ScopedFault fault("threadpool.submit");
  auto future = pool.Submit([] { return 7; });
  EXPECT_EQ(future.get(), 7);
  EXPECT_GE(FaultRegistry::Global().FireCount("threadpool.submit"), 1u);
}

}  // namespace
}  // namespace nebula
