#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "common/string_util.h"
#include "core/acg.h"
#include "core/identify.h"
#include "keyword/engine.h"
#include "keyword/mini_db.h"
#include "keyword/query_types.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

/// Fixture: genes JW0000..JW0009 with an ACG where JW0001 shares
/// annotations with the focal gene JW0000.
class IdentifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"name", DataType::kString, true}}));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(gene_
                      ->Insert({Value(StrFormat("JW%04d", i)),
                                Value(StrFormat("aa%cX", 'a' + i))})
                      .ok());
    }
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{2}[a-z][A-Z]").ok());
    engine_ = std::make_unique<KeywordSearchEngine>(&catalog_, &meta_);

    // ACG: annotations shared between gene rows 0 and 1.
    const AnnotationId a1 = store_.AddAnnotation("x");
    ASSERT_TRUE(store_.Attach(a1, Tid(0)).ok());
    ASSERT_TRUE(store_.Attach(a1, Tid(1)).ok());
    acg_.BuildFromStore(store_);
  }

  TupleId Tid(uint64_t row) const { return {gene_->id(), row}; }

  Catalog catalog_;
  NebulaMeta meta_;
  AnnotationStore store_;
  Acg acg_;
  Table* gene_ = nullptr;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(IdentifyTest, FindsQueriedTuples) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "q1"},
      {{"gene", "JW0003"}, 0.8, "q2"},
  };
  const auto candidates = *identifier.Identify(queries, {});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].tuple, Tid(2));
  EXPECT_EQ(candidates[1].tuple, Tid(3));
  // Normalization: top candidate at 1.0, the other scaled by the query
  // weight ratio.
  EXPECT_DOUBLE_EQ(candidates[0].confidence, 1.0);
  EXPECT_NEAR(candidates[1].confidence, 0.8, 1e-9);
}

TEST_F(IdentifyTest, QueryWeightScalesConfidence) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "q1"},
      {{"gene", "JW0003"}, 0.5, "q2"},
  };
  const auto candidates = *identifier.Identify(queries, {});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates[1].confidence / candidates[0].confidence, 0.5,
              1e-9);
}

TEST_F(IdentifyTest, GroupRewardSumsAcrossQueries) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  // Row 2 is referenced twice: by gid and by name.
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "q1"},
      {{"gene", "aacX"}, 1.0, "q2"},
      {{"gene", "JW0003"}, 1.0, "q3"},
  };
  const auto candidates = *identifier.Identify(queries, {});
  ASSERT_GE(candidates.size(), 2u);
  // The doubly-referenced tuple must rank first with strictly higher
  // confidence than the singly-referenced one.
  EXPECT_EQ(candidates[0].tuple, Tid(2));
  EXPECT_GT(candidates[0].confidence, candidates[1].confidence);
  EXPECT_EQ(candidates[0].evidence.size(), 2u);
}

TEST_F(IdentifyTest, GroupRewardDisabledKeepsMax) {
  IdentifyParams params;
  params.group_reward = false;
  TupleIdentifier identifier(engine_.get(), &acg_, params);
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "q1"},
      {{"gene", "aacX"}, 1.0, "q2"},
      {{"gene", "JW0003"}, 1.0, "q3"},
  };
  const auto candidates = *identifier.Identify(queries, {});
  // Without the reward, both tuples keep comparable confidences.
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_NEAR(candidates[0].confidence, candidates[1].confidence, 0.05);
}

TEST_F(IdentifyTest, FocalAdjustmentBoostsConnectedCandidates) {
  // Focal = row 0; row 1 shares an annotation with it in the ACG.
  TupleIdentifier with(engine_.get(), &acg_);
  IdentifyParams off;
  off.focal_adjustment = false;
  TupleIdentifier without(engine_.get(), &acg_, off);

  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0001"}, 1.0, "q1"},  // connected to focal
      {{"gene", "JW0005"}, 1.0, "q2"},  // not connected
  };
  const auto boosted = *with.Identify(queries, {Tid(0)});
  const auto plain = *without.Identify(queries, {Tid(0)});

  // Without adjustment the two candidates tie; with it, row 1 wins.
  ASSERT_EQ(boosted.size(), 2u);
  EXPECT_EQ(boosted[0].tuple, Tid(1));
  EXPECT_GT(boosted[0].confidence, boosted[1].confidence);
  ASSERT_EQ(plain.size(), 2u);
  EXPECT_NEAR(plain[0].confidence, plain[1].confidence, 1e-9);
}

TEST_F(IdentifyTest, FocalAdjustmentNoopWithoutFocal) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  const std::vector<KeywordQuery> queries = {{{"gene", "JW0001"}, 1.0, "q"}};
  const auto candidates = *identifier.Identify(queries, {});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_DOUBLE_EQ(candidates[0].confidence, 1.0);
}

TEST_F(IdentifyTest, MiniDbRestrictsCandidates) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  MiniDb mini;
  mini.Add(Tid(2));
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "q1"},
      {{"gene", "JW0003"}, 1.0, "q2"},
  };
  const auto candidates = *identifier.Identify(queries, {}, &mini);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].tuple, Tid(2));
}

TEST_F(IdentifyTest, SharedExecutionProducesSameCandidates) {
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "q1"},
      {{"gene", "JW0002"}, 0.7, "q1b"},
      {{"gene", "JW0003"}, 0.8, "q2"},
  };
  TupleIdentifier isolated(engine_.get(), &acg_);
  IdentifyParams shared_params;
  shared_params.shared_execution = true;
  TupleIdentifier shared(engine_.get(), &acg_, shared_params);

  const auto a = *isolated.Identify(queries, {Tid(0)});
  const auto b = *shared.Identify(queries, {Tid(0)});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple);
    EXPECT_NEAR(a[i].confidence, b[i].confidence, 1e-9);
  }
}

TEST_F(IdentifyTest, EvidenceDeduplicated) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  // Two identical queries (same label): evidence should list it once.
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0002"}, 1.0, "dup"},
      {{"gene", "JW0002"}, 1.0, "dup"},
  };
  const auto candidates = *identifier.Identify(queries, {});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].evidence.size(), 1u);
  EXPECT_EQ(candidates[0].evidence[0], "dup");
}

TEST_F(IdentifyTest, EmptyQuerySetYieldsNoCandidates) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  EXPECT_TRUE(identifier.Identify({}, {Tid(0)})->empty());
}

TEST_F(IdentifyTest, EqualConfidenceTieBreaksByTupleId) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  // Four tuples at identical confidence, queried in shuffled order: the
  // ranking must fall back to ascending tuple id. Regression guard for
  // the differential harness — equal-confidence candidates must never
  // reorder across runs or configurations.
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0005"}, 1.0, "q1"},
      {{"gene", "JW0003"}, 1.0, "q2"},
      {{"gene", "JW0008"}, 1.0, "q3"},
      {{"gene", "JW0002"}, 1.0, "q4"},
  };
  const auto first = *identifier.Identify(queries, {});
  ASSERT_EQ(first.size(), 4u);
  for (const auto& c : first) EXPECT_DOUBLE_EQ(c.confidence, 1.0);
  EXPECT_EQ(first[0].tuple, Tid(2));
  EXPECT_EQ(first[1].tuple, Tid(3));
  EXPECT_EQ(first[2].tuple, Tid(5));
  EXPECT_EQ(first[3].tuple, Tid(8));
  // And the whole ranking is reproducible call over call.
  const auto second = *identifier.Identify(queries, {});
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].tuple, first[i].tuple);
  }
}

TEST_F(IdentifyTest, ConfidencesAlwaysNormalized) {
  TupleIdentifier identifier(engine_.get(), &acg_);
  const std::vector<KeywordQuery> queries = {
      {{"gene", "JW0001"}, 0.3, "q1"},
      {{"gene", "JW0005"}, 0.2, "q2"},
  };
  const auto candidates = *identifier.Identify(queries, {Tid(0)});
  ASSERT_FALSE(candidates.empty());
  EXPECT_DOUBLE_EQ(candidates[0].confidence, 1.0);
  for (const auto& c : candidates) {
    EXPECT_GT(c.confidence, 0.0);
    EXPECT_LE(c.confidence, 1.0);
  }
}

}  // namespace
}  // namespace nebula
