// Concurrency stress over the ranked-lock chains the lockdep witness
// guards: table lookups racing the lazy hash/value index builds
// (storage.index_build), shared keyword execution fanning out on the
// pool (common.pool -> keyword.resultcache -> obs.*), and an exclusive
// writer hammering Insert's incremental index maintenance on its own
// table — Table's documented single-writer contract is honored by
// giving the writer a private table no reader ever touches.
//
// Runs under two labels:
//   tsan     — a -DNEBULA_SANITIZE=thread build race-checks the paths;
//   lockdep  — a -DNEBULA_LOCKDEP=ON build arms the runtime witness and
//              the test asserts zero order violations at the end.
// In a plain build it still runs as a functional smoke (results must
// match sequential execution), so the default suite keeps coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "keyword/engine.h"
#include "keyword/query_types.h"
#include "keyword/shared_executor.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/table.h"
#include "storage/value.h"
#include "storage/value_index.h"

#if NEBULA_LOCKDEP_ENABLED
#include "common/lockdep.h"
#endif

namespace nebula {
namespace {

constexpr int kGeneRows = 64;
constexpr int kReaderThreads = 3;
constexpr int kSearchThreads = 2;
constexpr int kGroupRounds = 40;
constexpr int kWriterRows = 400;

/// Unique per-row name matching the "[a-z]{3}[A-Z]" column pattern.
std::string StressName(int i) {
  return StrFormat("a%c%cX", 'a' + (i % 26), 'a' + ((i / 26) % 26));
}

class LockdepStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if NEBULA_LOCKDEP_ENABLED
    lockdep::ResetForTest();
    lockdep::SetFailureMode(lockdep::FailureMode::kReport);
    lockdep::SetEnabled(true);
#endif
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"name", DataType::kString, true}}));
    for (int i = 0; i < kGeneRows; ++i) {
      ASSERT_TRUE(gene_
                      ->Insert({Value(StrFormat("JW%04d", i)),
                                Value(StressName(i))})
                      .ok());
    }
    // Text index build is a mutation; do it before any concurrency so
    // LookupToken is a pure concurrent-safe read during the storm.
    ASSERT_TRUE(gene_->BuildTextIndex(1).ok());
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    engine_ = std::make_unique<KeywordSearchEngine>(&catalog_, &meta_);

    // The writer's private table lives in its own catalog: no keyword
    // search or reader task can reach it, so Insert runs under the
    // exclusive-access contract while everything else storms `gene`.
    scratch_ = *scratch_catalog_.CreateTable(
        "scratch", Schema({{"gid", DataType::kString, true},
                           {"name", DataType::kString, false}}));
  }

  void TearDown() override {
#if NEBULA_LOCKDEP_ENABLED
    for (const auto& v : lockdep::TakeViolations()) {
      ADD_FAILURE() << "lockdep violation (" << v.kind << "):\n" << v.detail;
    }
    EXPECT_EQ(lockdep::ViolationsDetected(), 0u);
    lockdep::SetEnabled(false);
    lockdep::SetFailureMode(lockdep::FailureMode::kAbort);
    lockdep::ResetForTest();
#endif
  }

  Catalog catalog_;
  NebulaMeta meta_;
  Table* gene_ = nullptr;
  std::unique_ptr<KeywordSearchEngine> engine_;
  Catalog scratch_catalog_;
  Table* scratch_ = nullptr;
};

std::vector<KeywordQuery> StressGroup(int round) {
  const std::string gid = StrFormat("JW%04d", round % kGeneRows);
  const std::string name = StressName(round % kGeneRows);
  return {
      {{"gene", gid}, 1.0, "q0"},
      {{"gene", gid}, 0.8, "q1"},  // duplicate content: shared statement
      {{"gene", name}, 0.9, "q2"},
      {{gid}, 0.7, "q3"},
  };
}

TEST_F(LockdepStressTest, ConcurrentLookupsSearchesAndExclusiveWriter) {
#if NEBULA_LOCKDEP_ENABLED
  // Prove the witness is actually armed before trusting its verdict: a
  // deterministic in-order nesting must show up as an observed edge.
  {
    Mutex outer(kLockRankStorageIndexBuild);
    Mutex inner(kLockRankCommonPool);
    MutexLock a(outer);
    MutexLock b(inner);
  }
  ASSERT_GE(lockdep::EdgesObserved(), 1u);
#endif

  // No warm-up lookups before the storm: the lazy hash/value index
  // builds on `gene` must happen *inside* it, with multiple reader
  // threads racing to trigger them. Correctness is checked against a
  // fresh sequential engine after the threads join.
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<int> search_errors{0};

  // Readers: concurrent-safe const surface of `gene`, including the
  // lazy builds (hash index via Lookup, value index via TryValueIndex)
  // that serialize on storage.index_build.
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads + kSearchThreads + 1);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([this, t, &stop, &reader_errors] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string gid = StrFormat("JW%04d", i % kGeneRows);
        if (gene_->Lookup("gid", Value(gid)).size() != 1) {
          reader_errors.fetch_add(1);
        }
        // Tokens are lower-cased alphanumeric runs, so a whole name or
        // gid lower-cases to exactly one token.
        std::string name_token = StressName(i % kGeneRows);
        for (char& c : name_token) c = static_cast<char>(std::tolower(c));
        if (gene_->LookupToken(1, name_token).size() != 1) {
          reader_errors.fetch_add(1);
        }
        if (const ValueIndex* vi = gene_->TryValueIndex()) {
          std::string token = gid;
          for (char& c : token) c = static_cast<char>(std::tolower(c));
          if (vi->Lookup(token, 0) == nullptr) reader_errors.fetch_add(1);
        }
        (void)gene_->value_index_info();
        ++i;
      }
    });
  }

  // Searchers: the engine's thread-safe Search overload shares the
  // result-cache memo (keyword.resultcache) across threads.
  for (int t = 0; t < kSearchThreads; ++t) {
    readers.emplace_back([this, t, &stop, &search_errors] {
      int round = t;
      while (!stop.load(std::memory_order_relaxed)) {
        ExecStats stats;
        KeywordQuery q{{"gene", StrFormat("JW%04d", round % kGeneRows)},
                       1.0,
                       "bg"};
        auto hits = engine_->Search(q, nullptr, &stats);
        if (!hits.ok() || hits->empty()) search_errors.fetch_add(1);
        ++round;
      }
    });
  }

  // Exclusive writer: Insert on the private table, with its hash and
  // value indexes built first so every Insert exercises the incremental
  // index maintenance under storage.index_build.
  std::atomic<int> writer_errors{0};
  readers.emplace_back([this, &writer_errors] {
    (void)scratch_->Lookup("gid", Value(std::string("warm")));
    (void)scratch_->TryValueIndex();
    for (int i = 0; i < kWriterRows; ++i) {
      const std::string gid = StrFormat("S%06d", i);
      if (!scratch_->Insert({Value(gid), Value(std::string("payload"))})
               .ok()) {
        writer_errors.fetch_add(1);
      }
      if (scratch_->Lookup("gid", Value(gid)).size() != 1) {
        writer_errors.fetch_add(1);
      }
    }
  });

  // Main thread: shared group execution fanning out on the pool. The
  // pool is reserved for ExecuteGroup's distinct statements — the
  // long-running reader loops live on raw threads so they can never
  // starve the futures ExecuteGroup joins on.
  ThreadPool pool(4);
  for (int round = 0; round < kGroupRounds; ++round) {
    const auto queries = StressGroup(round);
    std::vector<std::vector<SearchHit>> results;
    SharedKeywordExecutor shared(engine_.get(), &pool);
    ASSERT_TRUE(shared.ExecuteGroup(queries, &results).ok());
    ASSERT_EQ(results.size(), queries.size());
    EXPECT_FALSE(results[0].empty()) << "round " << round;
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(search_errors.load(), 0);
  EXPECT_EQ(writer_errors.load(), 0);
  EXPECT_EQ(scratch_->num_rows(), static_cast<uint64_t>(kWriterRows));

  // The storm must not have perturbed results: a post-hoc sequential
  // pass over the same groups agrees with a fresh engine.
  KeywordSearchEngine fresh(&catalog_, &meta_);
  for (int round = 0; round < 4; ++round) {
    const auto queries = StressGroup(round);
    std::vector<std::vector<SearchHit>> shared_results;
    SharedKeywordExecutor shared(engine_.get());
    ASSERT_TRUE(shared.ExecuteGroup(queries, &shared_results).ok());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const auto isolated = *fresh.Search(queries[qi]);
      ASSERT_EQ(shared_results[qi].size(), isolated.size())
          << "round " << round << " query " << qi;
      for (size_t h = 0; h < isolated.size(); ++h) {
        EXPECT_EQ(shared_results[qi][h].tuple, isolated[h].tuple);
      }
    }
  }
}

}  // namespace
}  // namespace nebula
