#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "annotation/auto_attach.h"
#include "common/string_util.h"
#include "core/acg.h"
#include "core/identify.h"
#include "core/spam.h"
#include "keyword/engine.h"
#include "keyword/query_types.h"
#include "meta/concept_learning.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

// --------------------- auto-attachment rules ([18]) ---------------------

class AutoAttachTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"family", DataType::kString}}));
    ASSERT_TRUE(gene_->Insert({Value("JW0001"), Value("F1")}).ok());
    ASSERT_TRUE(gene_->Insert({Value("JW0002"), Value("F2")}).ok());
    ASSERT_TRUE(gene_->Insert({Value("JW0003"), Value("F1")}).ok());
    flag_ = store_.AddAnnotation("Rounded Flag");
    registry_ = std::make_unique<AutoAttachRegistry>(&catalog_, &store_);
  }

  SelectQuery FamilyF1() const {
    return {"gene", {{"family", CompareOp::kEq, Value("F1")}}};
  }

  Catalog catalog_;
  AnnotationStore store_;
  Table* gene_ = nullptr;
  AnnotationId flag_ = 0;
  std::unique_ptr<AutoAttachRegistry> registry_;
};

TEST_F(AutoAttachTest, AddRuleAttachesToExistingMatches) {
  auto attached = registry_->AddRule(flag_, FamilyF1());
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 2u);
  EXPECT_TRUE(store_.HasAttachment(flag_, {gene_->id(), 0}));
  EXPECT_FALSE(store_.HasAttachment(flag_, {gene_->id(), 1}));
  EXPECT_TRUE(store_.HasAttachment(flag_, {gene_->id(), 2}));
  EXPECT_EQ(registry_->rules().size(), 1u);
}

TEST_F(AutoAttachTest, OnInsertAppliesMatchingRules) {
  ASSERT_TRUE(registry_->AddRule(flag_, FamilyF1()).ok());
  auto r1 = gene_->Insert({Value("JW0004"), Value("F1")});
  ASSERT_TRUE(r1.ok());
  auto attached = registry_->OnInsert({gene_->id(), *r1});
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 1u);
  EXPECT_TRUE(store_.HasAttachment(flag_, {gene_->id(), *r1}));

  auto r2 = gene_->Insert({Value("JW0005"), Value("F9")});
  ASSERT_TRUE(r2.ok());
  attached = registry_->OnInsert({gene_->id(), *r2});
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 0u);
}

TEST_F(AutoAttachTest, MultipleRulesCanFireOnOneInsert) {
  const AnnotationId triangle = store_.AddAnnotation("Triangle Flag");
  ASSERT_TRUE(registry_->AddRule(flag_, FamilyF1()).ok());
  ASSERT_TRUE(registry_
                  ->AddRule(triangle, {"gene",
                                       {{"gid", CompareOp::kGt,
                                         Value("JW0002")}}})
                  .ok());
  auto r = gene_->Insert({Value("JW0009"), Value("F1")});
  ASSERT_TRUE(r.ok());
  auto attached = registry_->OnInsert({gene_->id(), *r});
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 2u);
}

TEST_F(AutoAttachTest, RuleValidation) {
  EXPECT_FALSE(registry_->AddRule(99, FamilyF1()).ok());
  EXPECT_FALSE(
      registry_->AddRule(flag_, {"missing_table", {}}).ok());
  EXPECT_EQ(registry_->rules().size(), 0u);
}

TEST_F(AutoAttachTest, DoesNotDuplicateExistingAttachment) {
  ASSERT_TRUE(store_.Attach(flag_, {gene_->id(), 0}).ok());
  auto attached = registry_->AddRule(flag_, FamilyF1());
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 1u);  // row 0 already attached, only row 2 new
}

// ------------------ concept learning (footnote 2) -----------------------

class ConceptLearningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"name", DataType::kString, true},
                        {"seq", DataType::kString}}));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(gene_
                      ->Insert({Value(StrFormat("JW%04d", i)),
                                Value(StrFormat("ab%cX", 'a' + i)),
                                Value("ACGTACGT")})
                      .ok());
    }
    // Annotations that mention the gid of their attached tuple (and never
    // the seq).
    for (int i = 0; i < 8; ++i) {
      const AnnotationId a = store_.AddAnnotation(
          StrFormat("observed expression of gene JW%04d in culture", i));
      ASSERT_TRUE(store_.Attach(a, {gene_->id(),
                                    static_cast<uint64_t>(i)}).ok());
    }
    // A couple of annotations mentioning the name instead.
    for (int i = 8; i < 10; ++i) {
      const AnnotationId a = store_.AddAnnotation(
          StrFormat("gene ab%cX shows decreased growth", 'a' + i));
      ASSERT_TRUE(store_.Attach(a, {gene_->id(),
                                    static_cast<uint64_t>(i)}).ok());
    }
  }

  Catalog catalog_;
  AnnotationStore store_;
  Table* gene_ = nullptr;
};

TEST_F(ConceptLearningTest, LearnsReferencingColumnsWithSupport) {
  const auto learned = LearnConceptRefs(catalog_, store_);
  ASSERT_FALSE(learned.empty());
  // gid should be the top column with 80% support; name has 20%.
  EXPECT_EQ(learned[0].column, "gid");
  EXPECT_NEAR(learned[0].support(), 0.8, 1e-9);
  bool found_name = false;
  for (const auto& lc : learned) {
    if (lc.column == "name") {
      found_name = true;
      EXPECT_NEAR(lc.support(), 0.2, 1e-9);
    }
    EXPECT_NE(lc.column, "seq");  // never mentioned
  }
  EXPECT_TRUE(found_name);
}

TEST_F(ConceptLearningTest, ApplyRegistersConcept) {
  NebulaMeta meta;
  const auto learned = LearnConceptRefs(catalog_, store_);
  ASSERT_TRUE(ApplyLearnedConcepts(learned, /*min_support=*/0.5, &meta).ok());
  ASSERT_EQ(meta.concepts().size(), 1u);
  EXPECT_EQ(meta.concepts()[0].concept_name, "Gene (learned)");
  ASSERT_EQ(meta.concepts()[0].referenced_by.size(), 1u);
  EXPECT_EQ(meta.concepts()[0].referenced_by[0][0], "gid");
  // The learned column is usable by the matching pipeline.
  EXPECT_NE(meta.FindValueColumn("gene", "gid"), nullptr);
  EXPECT_EQ(meta.FindValueColumn("gene", "name"), nullptr);  // below 0.5
}

TEST_F(ConceptLearningTest, ApplyNothingBelowThreshold) {
  NebulaMeta meta;
  const auto learned = LearnConceptRefs(catalog_, store_);
  ASSERT_TRUE(ApplyLearnedConcepts(learned, /*min_support=*/0.99, &meta).ok());
  EXPECT_TRUE(meta.concepts().empty());
}

TEST_F(ConceptLearningTest, SamplingCapRespected) {
  ConceptLearningParams params;
  params.max_attachments = 3;
  const auto learned = LearnConceptRefs(catalog_, store_, params);
  for (const auto& lc : learned) {
    EXPECT_LE(lc.attachments, 3u);
  }
}

TEST_F(ConceptLearningTest, ShortValuesIgnored) {
  Table* tag = *catalog_.CreateTable(
      "tag", Schema({{"code", DataType::kString}}));
  ASSERT_TRUE(tag->Insert({Value("in")}).ok());  // shorter than min length
  const AnnotationId a = store_.AddAnnotation("found in the sample");
  ASSERT_TRUE(store_.Attach(a, {tag->id(), 0}).ok());
  const auto learned = LearnConceptRefs(catalog_, store_);
  for (const auto& lc : learned) {
    EXPECT_NE(lc.table, "tag");
  }
}

// ---------------------- spam guard (footnote 1) --------------------------

std::vector<CandidateTuple> MakeCandidates(size_t n) {
  std::vector<CandidateTuple> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].tuple = {0, i};
    out[i].confidence = 0.5;
  }
  return out;
}

TEST(SpamGuardTest, SmallPredictionsPass) {
  const SpamVerdict v = DetectSpam(MakeCandidates(10), 1000);
  EXPECT_FALSE(v.spam_suspected);
  EXPECT_NEAR(v.coverage, 0.01, 1e-9);
}

TEST(SpamGuardTest, ExcessiveCoverageFlagged) {
  const SpamVerdict v = DetectSpam(MakeCandidates(200), 1000);
  EXPECT_TRUE(v.spam_suspected);
  EXPECT_NEAR(v.coverage, 0.2, 1e-9);
}

TEST(SpamGuardTest, AbsoluteFloorProtectsTinyDatabases) {
  // 40% coverage but under the candidate floor: not spam.
  SpamGuardParams params;
  params.min_candidates = 50;
  const SpamVerdict v = DetectSpam(MakeCandidates(4), 10, params);
  EXPECT_FALSE(v.spam_suspected);
}

TEST(SpamGuardTest, EmptyDatabaseSafe) {
  const SpamVerdict v = DetectSpam(MakeCandidates(5), 0);
  EXPECT_FALSE(v.spam_suspected);
  EXPECT_DOUBLE_EQ(v.coverage, 0.0);
}

// --------------- ACG shortest-path reward (§6.2 extension) ---------------

class PathWeightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Chain t0 - t1 - t2 with strong edges, plus an isolated t9.
    AnnotationStore store;
    for (int i = 0; i < 2; ++i) {
      const AnnotationId a = store.AddAnnotation("x");
      ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i)}).ok());
      ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i + 1)}).ok());
    }
    acg_.BuildFromStore(store);
  }

  Acg acg_;
};

TEST_F(PathWeightTest, DirectEdgeEqualsEdgeWeight) {
  EXPECT_NEAR(acg_.PathWeight({{0, 0}}, {0, 1}, 1),
              acg_.EdgeWeight({0, 0}, {0, 1}), 1e-12);
}

TEST_F(PathWeightTest, TwoHopPathIsProductOfEdges) {
  const double w01 = acg_.EdgeWeight({0, 0}, {0, 1});
  const double w12 = acg_.EdgeWeight({0, 1}, {0, 2});
  EXPECT_NEAR(acg_.PathWeight({{0, 0}}, {0, 2}, 2), w01 * w12, 1e-12);
}

TEST_F(PathWeightTest, HopBudgetEnforced) {
  EXPECT_DOUBLE_EQ(acg_.PathWeight({{0, 0}}, {0, 2}, 1), 0.0);
}

TEST_F(PathWeightTest, UnreachableAndFocalCases) {
  EXPECT_DOUBLE_EQ(acg_.PathWeight({{0, 0}}, {0, 9}, 5), 0.0);
  // A focal tuple itself has path weight 1 (empty path).
  EXPECT_DOUBLE_EQ(acg_.PathWeight({{0, 0}}, {0, 0}, 3), 1.0);
}

TEST_F(PathWeightTest, BestOverMultipleFocal) {
  const double via0 = acg_.PathWeight({{0, 0}}, {0, 2}, 3);
  const double direct = acg_.PathWeight({{0, 1}}, {0, 2}, 3);
  EXPECT_NEAR(acg_.PathWeight({{0, 0}, {0, 1}}, {0, 2}, 3),
              std::max(via0, direct), 1e-12);
}

TEST(FocalRewardModeTest, ShortestPathRewardsIndirectCandidates) {
  // Catalog with three genes; ACG chain g0 - g1 - g2.
  Catalog catalog;
  Table* gene = *catalog.CreateTable(
      "gene", Schema({{"gid", DataType::kString, true}}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(gene->Insert({Value(StrFormat("JW%04d", i))}).ok());
  }
  NebulaMeta meta;
  ASSERT_TRUE(meta.AddConcept("Gene", "gene", {{"gid"}}).ok());
  ASSERT_TRUE(meta.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
  KeywordSearchEngine engine(&catalog, &meta);

  AnnotationStore store;
  for (int i = 0; i < 2; ++i) {
    const AnnotationId a = store.AddAnnotation("x");
    ASSERT_TRUE(store.Attach(a, {gene->id(), static_cast<uint64_t>(i)}).ok());
    ASSERT_TRUE(
        store.Attach(a, {gene->id(), static_cast<uint64_t>(i + 1)}).ok());
  }
  Acg acg;
  acg.BuildFromStore(store);

  // Focal = g0; candidate g2 is 2 hops away: direct-edge mode gives it no
  // reward, shortest-path mode does.
  const std::vector<KeywordQuery> queries = {{{"JW0002"}, 1.0, "q"}};
  IdentifyParams direct;
  IdentifyParams path;
  path.focal_reward_mode = FocalRewardMode::kShortestPath;
  path.path_max_hops = 3;

  TupleIdentifier direct_id(&engine, &acg, direct);
  TupleIdentifier path_id(&engine, &acg, path);
  const TupleId focal{gene->id(), 0};

  // With a single candidate, normalization hides the reward; compare the
  // relative confidence against an unrelated second query instead.
  const std::vector<KeywordQuery> two = {{{"JW0002"}, 1.0, "q1"},
                                         {{"JW0001"}, 1.0, "q2"}};
  const auto d = *direct_id.Identify(two, {focal});
  const auto p = *path_id.Identify(two, {focal});
  auto conf_of = [&](const std::vector<CandidateTuple>& cs, uint64_t row) {
    for (const auto& c : cs) {
      if (c.tuple.row == row) return c.confidence;
    }
    return 0.0;
  };
  // Direct mode: g2 unconnected to focal -> strictly below g1.
  EXPECT_LT(conf_of(d, 2), conf_of(d, 1));
  // Path mode: g2 gains a 2-hop reward, closing part of the gap.
  EXPECT_GT(conf_of(p, 2), conf_of(d, 2));
}

}  // namespace
}  // namespace nebula
