#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

Schema GeneSchema() {
  return Schema({{"gid", DataType::kString, /*unique=*/true},
                 {"name", DataType::kString},
                 {"length", DataType::kInt64}});
}

TEST(SchemaTest, ColumnIndexCaseInsensitive) {
  const Schema s = GeneSchema();
  EXPECT_EQ(s.ColumnIndex("gid"), 0);
  EXPECT_EQ(s.ColumnIndex("GID"), 0);
  EXPECT_EQ(s.ColumnIndex("Length"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_TRUE(s.HasColumn("name"));
  EXPECT_FALSE(s.HasColumn("nope"));
}

TEST(SchemaTest, ValidateRowArity) {
  const Schema s = GeneSchema();
  EXPECT_FALSE(s.ValidateRow({Value("a")}).ok());
  EXPECT_TRUE(
      s.ValidateRow({Value("a"), Value("b"), Value(int64_t{1})}).ok());
}

TEST(SchemaTest, ValidateRowTypes) {
  const Schema s = GeneSchema();
  const Status st =
      s.ValidateRow({Value("a"), Value("b"), Value("not-an-int")});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TupleIdTest, EqualityOrderingHash) {
  const TupleId a{1, 5}, b{1, 5}, c{1, 6}, d{2, 0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_LT(a, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_EQ(a.ToString(), "1:5");
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : table_(0, "gene", GeneSchema()) {}

  Table::RowId MustInsert(const char* gid, const char* name, int64_t len) {
    auto r = table_.Insert({Value(gid), Value(name), Value(len)});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  Table table_;
};

TEST_F(TableTest, InsertAssignsSequentialRowIds) {
  EXPECT_EQ(MustInsert("JW0001", "aaaA", 10), 0u);
  EXPECT_EQ(MustInsert("JW0002", "aabB", 20), 1u);
  EXPECT_EQ(table_.num_rows(), 2u);
}

TEST_F(TableTest, GetRowAndCell) {
  MustInsert("JW0001", "aaaA", 10);
  EXPECT_EQ(table_.GetRow(0)[0].AsString(), "JW0001");
  EXPECT_EQ(table_.GetCell(0, 2).AsInt(), 10);
}

TEST_F(TableTest, RejectsWrongArity) {
  auto r = table_.Insert({Value("JW0001")});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TableTest, RejectsWrongType) {
  auto r = table_.Insert({Value("JW0001"), Value("x"), Value("10")});
  EXPECT_FALSE(r.ok());
}

TEST_F(TableTest, EnforcesUniqueConstraint) {
  MustInsert("JW0001", "aaaA", 10);
  auto dup = table_.Insert({Value("JW0001"), Value("zzzZ"), Value(int64_t{5})});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // Non-unique column may repeat.
  EXPECT_TRUE(
      table_.Insert({Value("JW0002"), Value("aaaA"), Value(int64_t{5})}).ok());
}

TEST_F(TableTest, LookupByValue) {
  MustInsert("JW0001", "aaaA", 10);
  MustInsert("JW0002", "aaaA", 20);
  MustInsert("JW0003", "bbbB", 30);
  const auto rows = table_.Lookup("name", Value("aaaA"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 1u);
  EXPECT_TRUE(table_.Lookup("name", Value("none")).empty());
  EXPECT_TRUE(table_.Lookup("missing_col", Value("x")).empty());
}

TEST_F(TableTest, LookupIsMaintainedIncrementally) {
  MustInsert("JW0001", "aaaA", 10);
  EXPECT_EQ(table_.Lookup("gid", Value("JW0001")).size(), 1u);
  // Index already built; the next insert must show up.
  MustInsert("JW0002", "aaaA", 20);
  EXPECT_EQ(table_.Lookup("gid", Value("JW0002")).size(), 1u);
}

TEST_F(TableTest, LookupIntColumn) {
  MustInsert("JW0001", "aaaA", 10);
  MustInsert("JW0002", "bbbB", 10);
  EXPECT_EQ(table_.Lookup("length", Value(int64_t{10})).size(), 2u);
  // Same digits, wrong type: no hit.
  EXPECT_TRUE(table_.Lookup("length", Value("10")).empty());
}

TEST_F(TableTest, ScanWithPredicate) {
  MustInsert("JW0001", "aaaA", 10);
  MustInsert("JW0002", "bbbB", 25);
  MustInsert("JW0003", "cccC", 40);
  const auto rows = table_.Scan(
      [](const std::vector<Value>& row) { return row[2].AsInt() > 15; });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 1u);
}

TEST_F(TableTest, DistinctCount) {
  MustInsert("JW0001", "aaaA", 10);
  MustInsert("JW0002", "aaaA", 20);
  MustInsert("JW0003", "bbbB", 10);
  EXPECT_EQ(table_.DistinctCount(1), 2u);
  EXPECT_EQ(table_.DistinctCount(0), 3u);
}

// ------------------------------ text index ------------------------------

class TextIndexTest : public ::testing::Test {
 protected:
  TextIndexTest()
      : table_(0, "pub",
               Schema({{"id", DataType::kString, true},
                       {"abstract", DataType::kString},
                       {"year", DataType::kInt64}})) {}
  Table table_;
};

TEST_F(TextIndexTest, BuildAndLookup) {
  ASSERT_TRUE(table_
                  .Insert({Value("P1"), Value("gene JW0014 binds G-Actin"),
                           Value(int64_t{2014})})
                  .ok());
  ASSERT_TRUE(
      table_.Insert({Value("P2"), Value("unrelated text"), Value(int64_t{2015})})
          .ok());
  ASSERT_TRUE(table_.BuildTextIndex(1).ok());
  EXPECT_TRUE(table_.HasTextIndex(1));
  EXPECT_FALSE(table_.HasTextIndex(0));

  EXPECT_EQ(table_.LookupToken(1, "jw0014").size(), 1u);
  EXPECT_EQ(table_.LookupToken(1, "JW0014").size(), 1u);  // case-insensitive
  EXPECT_EQ(table_.LookupToken(1, "text").size(), 1u);
  EXPECT_TRUE(table_.LookupToken(1, "absent").empty());
  // "G-Actin" is split at '-' by the index tokenizer.
  EXPECT_EQ(table_.LookupToken(1, "actin").size(), 1u);
}

TEST_F(TextIndexTest, LookupWithoutIndexIsEmpty) {
  ASSERT_TRUE(
      table_.Insert({Value("P1"), Value("abc"), Value(int64_t{1})}).ok());
  EXPECT_TRUE(table_.LookupToken(1, "abc").empty());
}

TEST_F(TextIndexTest, IndexMaintainedAcrossInserts) {
  ASSERT_TRUE(table_.BuildTextIndex(1).ok());
  ASSERT_TRUE(
      table_.Insert({Value("P1"), Value("alpha beta"), Value(int64_t{1})})
          .ok());
  ASSERT_TRUE(
      table_.Insert({Value("P2"), Value("beta gamma"), Value(int64_t{2})})
          .ok());
  EXPECT_EQ(table_.LookupToken(1, "beta").size(), 2u);
  EXPECT_EQ(table_.LookupToken(1, "gamma").size(), 1u);
}

TEST_F(TextIndexTest, RepeatedTokenInOneRowPostsOnce) {
  ASSERT_TRUE(table_.BuildTextIndex(1).ok());
  ASSERT_TRUE(
      table_.Insert({Value("P1"), Value("echo echo echo"), Value(int64_t{1})})
          .ok());
  EXPECT_EQ(table_.LookupToken(1, "echo").size(), 1u);
}

TEST_F(TextIndexTest, RejectsNonStringColumn) {
  EXPECT_EQ(table_.BuildTextIndex(2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table_.BuildTextIndex(9).code(), StatusCode::kOutOfRange);
}

TEST(TokenizeForIndexTest, SplitsOnNonAlnum) {
  const auto toks = TokenizeForIndex("Gene JW0014, binds G-Actin!");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "gene");
  EXPECT_EQ(toks[1], "jw0014");
  EXPECT_EQ(toks[3], "g");
  EXPECT_EQ(toks[4], "actin");
}

TEST(TokenizeForIndexTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeForIndex("").empty());
  EXPECT_TRUE(TokenizeForIndex("... !!").empty());
}

}  // namespace
}  // namespace nebula
