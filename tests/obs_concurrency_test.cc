/// Concurrency hammering for the observability layer: counters,
/// histograms, the registry's find-or-create path, the trace builder, and
/// the trace recorder are all driven from ThreadPool workers at once.
/// Run from a -DNEBULA_SANITIZE=thread build (ctest -L tsan) to
/// race-check; the assertions also pin the exactly-once accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nebula {
namespace obs {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kTasksPerThread = 64;
constexpr uint64_t kIncrementsPerTask = 250;

TEST(ObsConcurrencyTest, CountersAndHistogramsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammer_total");
  Histogram* histogram = registry.GetHistogram("hammer_us");

  ThreadPool pool(kThreads);
  std::vector<std::future<void>> done;
  for (size_t t = 0; t < kThreads * kTasksPerThread; ++t) {
    done.push_back(pool.Submit([counter, histogram, t] {
      for (uint64_t i = 0; i < kIncrementsPerTask; ++i) {
        counter->Increment();
        histogram->Observe(t % 4096);  // spreads across ~12 buckets
      }
    }));
  }
  for (auto& f : done) f.get();

  const uint64_t expected = kThreads * kTasksPerThread * kIncrementsPerTask;
  EXPECT_EQ(counter->Value(), expected);
  const Histogram::Snapshot snap = histogram->GetSnapshot();
  EXPECT_EQ(snap.count, expected);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    bucket_total += snap.buckets[b];
  }
  EXPECT_EQ(bucket_total, expected);
}

TEST(ObsConcurrencyTest, RegistryFindOrCreateRaces) {
  MetricsRegistry registry;
  ThreadPool pool(kThreads);
  std::vector<std::future<Counter*>> handles;
  for (size_t t = 0; t < kThreads * kTasksPerThread; ++t) {
    handles.push_back(pool.Submit([&registry, t] {
      // All tasks race find-or-create over 8 distinct label sets.
      Counter* c = registry.GetCounter(
          "race_total", {{"lane", std::to_string(t % 8)}}, "racing");
      c->Increment();
      return c;
    }));
  }
  std::vector<Counter*> resolved;
  for (auto& h : handles) resolved.push_back(h.get());
  // Identical label sets must have resolved to the identical instrument.
  for (size_t i = 0; i < resolved.size(); ++i) {
    EXPECT_EQ(resolved[i], resolved[i % 8]);
  }
  uint64_t total = 0;
  for (const auto& family : registry.Snapshot()) {
    for (const auto& sample : family.samples) total += sample.counter_value;
  }
  EXPECT_EQ(total, kThreads * kTasksPerThread);
}

TEST(ObsConcurrencyTest, TraceBuilderFromWorkers) {
  TraceBuilder builder;
  const uint32_t root = builder.BeginSpan("root");

  ThreadPool pool(kThreads);
  std::vector<std::future<void>> done;
  constexpr size_t kSpans = 512;
  for (size_t t = 0; t < kSpans; ++t) {
    done.push_back(pool.Submit([&builder, root, t] {
      builder.AddCompleteSpan("sql", root, builder.ElapsedMicros(), t,
                              "stmt-" + std::to_string(t));
    }));
  }
  for (auto& f : done) f.get();
  builder.EndSpan(root);

  const Trace trace = builder.Finish(1);
  ASSERT_EQ(trace.spans.size(), kSpans + 1);
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    EXPECT_EQ(trace.spans[i].id, i + 1);
    EXPECT_LE(trace.spans[i].parent, root);
  }
}

TEST(ObsConcurrencyTest, TraceRecorderFromWorkers) {
  TraceRecorder recorder(/*capacity=*/16);
  ThreadPool pool(kThreads);
  std::vector<std::future<void>> done;
  constexpr size_t kTraces = 256;
  std::atomic<uint64_t> next{0};
  for (size_t t = 0; t < kTraces; ++t) {
    done.push_back(pool.Submit([&recorder, &next] {
      TraceBuilder b;
      b.EndSpan(b.BeginSpan("root"));
      recorder.Record(b.Finish(next.fetch_add(1)));
    }));
  }
  for (auto& f : done) f.get();

  EXPECT_EQ(recorder.size(), 16u);
  EXPECT_EQ(recorder.total_recorded(), kTraces);
  EXPECT_EQ(recorder.dropped(), kTraces - 16);
  // A concurrent-safe export sanity check while more traces arrive.
  EXPECT_EQ(TracesToJson(recorder).find("{\"dropped\":"), 0u);
}

TEST(ObsConcurrencyTest, SnapshotWhileHammering) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("live_total");
  Histogram* histogram = registry.GetHistogram("live_us");
  std::atomic<bool> stop{false};

  ThreadPool pool(kThreads);
  std::vector<std::future<void>> done;
  for (size_t t = 0; t < kThreads; ++t) {
    done.push_back(pool.Submit([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        histogram->Observe(42);
      }
    }));
  }
  // Exports must stay well-formed while writers run.
  for (int i = 0; i < 50; ++i) {
    const std::string text = ExportPrometheus(registry);
    EXPECT_NE(text.find("live_total"), std::string::npos);
    const std::string json = ExportJson(registry);
    EXPECT_EQ(json.find("{\"metrics\":["), 0u);
  }
  stop.store(true);
  for (auto& f : done) f.get();
  const Histogram::Snapshot snap = histogram->GetSnapshot();
  EXPECT_EQ(snap.count, counter->Value());
}

TEST(ObsConcurrencyTest, SnapshotDeltaWhileRecording) {
  // Interval percentiles are computed from snapshot deltas taken while
  // workers keep observing. Every delta must be internally consistent
  // (nonnegative buckets summing to count, monotone quantile ladder) and
  // the final total must account for every observation exactly once.
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed{0};

  ThreadPool pool(kThreads);
  std::vector<std::future<void>> done;
  for (size_t t = 0; t < kThreads; ++t) {
    done.push_back(pool.Submit([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Observe((t * 37) % 4096);
        observed.fetch_add(1, std::memory_order_relaxed);
      }
    }));
  }

  Histogram::Snapshot baseline = histogram.GetSnapshot();
  for (int i = 0; i < 50; ++i) {
    const Histogram::Snapshot now = histogram.GetSnapshot();
    const Histogram::Snapshot delta = now.Delta(baseline);
    baseline = now;
    uint64_t bucket_total = 0;
    for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      bucket_total += delta.buckets[b];
    }
    EXPECT_EQ(bucket_total, delta.count);
    uint64_t prev = 0;
    for (const auto& spec : Histogram::kStandardQuantiles) {
      const uint64_t q = delta.Quantile(spec.q);
      EXPECT_GE(q, prev) << spec.name;
      prev = q;
    }
  }
  stop.store(true);
  for (auto& f : done) f.get();
  EXPECT_EQ(histogram.GetSnapshot().count,
            observed.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace obs
}  // namespace nebula
