// NebulaCheck harness tests: the generator is deterministic, a sweep over
// all config pairs is divergence-free, and the harness catches,
// shrinks, and replays a deliberately injected bug. Labeled "check".

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <iterator>
#include <sstream>

#include "core/engine.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "testing/check_runner.h"
#include "testing/check_workload.h"
#include "testing/crash.h"
#include "testing/differential.h"
#include "testing/shrink.h"

namespace nebula {
namespace {

using check::CheckAnnotation;
using check::CheckOptions;
using check::CheckUniverse;
using check::CheckWorkload;
using check::ConfigPair;
using check::DifferentialRunner;
using check::DiffOptions;
using check::Divergence;
using check::ReproCase;
using check::RunOutcome;

TEST(CheckWorkloadTest, UniverseIsDeterministic) {
  auto a = check::BuildCheckUniverse(11);
  auto b = check::BuildCheckUniverse(11);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ((*a)->catalog.num_tables(), (*b)->catalog.num_tables());
  for (size_t t = 0; t < (*a)->catalog.num_tables(); ++t) {
    const Table* ta = (*a)->catalog.GetTableById(static_cast<uint32_t>(t));
    const Table* tb = (*b)->catalog.GetTableById(static_cast<uint32_t>(t));
    ASSERT_EQ(ta->num_rows(), tb->num_rows());
    for (uint64_t r = 0; r < ta->num_rows(); ++r) {
      for (size_t c = 0; c < ta->schema().num_columns(); ++c) {
        ASSERT_EQ(ta->GetCell(r, c), tb->GetCell(r, c));
      }
    }
  }
  EXPECT_EQ((*a)->store.num_annotations(), (*b)->store.num_annotations());
  EXPECT_EQ((*a)->store.num_attachments(), (*b)->store.num_attachments());
  EXPECT_EQ((*a)->corpus_tuples, (*b)->corpus_tuples);

  const CheckWorkload wa = check::GenerateCheckWorkload(11, **a);
  const CheckWorkload wb = check::GenerateCheckWorkload(11, **b);
  ASSERT_EQ(wa.annotations.size(), wb.annotations.size());
  for (size_t i = 0; i < wa.annotations.size(); ++i) {
    EXPECT_EQ(wa.annotations[i].text, wb.annotations[i].text);
    EXPECT_EQ(wa.annotations[i].focal, wb.annotations[i].focal);
  }
  // Different seeds give different universes (sanity, not certainty —
  // but these two do differ).
  auto c = check::BuildCheckUniverse(12);
  ASSERT_TRUE(c.ok());
  const CheckWorkload wc = check::GenerateCheckWorkload(12, **c);
  EXPECT_NE(wa.annotations.front().text, wc.annotations.front().text);
}

TEST(CheckWorkloadTest, StreamReferencesRealTuplesWithFocal) {
  auto universe = check::BuildCheckUniverse(3);
  ASSERT_TRUE(universe.ok());
  const CheckWorkload workload = check::GenerateCheckWorkload(3, **universe);
  ASSERT_FALSE(workload.annotations.empty());
  for (const CheckAnnotation& a : workload.annotations) {
    EXPECT_FALSE(a.text.empty());
    ASSERT_FALSE(a.focal.empty());
    for (const TupleId& t : a.focal) {
      const Table* table = (*universe)->catalog.GetTableById(t.table_id);
      ASSERT_NE(table, nullptr);
      EXPECT_LT(t.row, table->num_rows());
    }
  }
}

TEST(DifferentialTest, RunIsReproducible) {
  const DifferentialRunner runner;
  auto universe = check::BuildCheckUniverse(5);
  ASSERT_TRUE(universe.ok());
  const CheckWorkload workload = check::GenerateCheckWorkload(5, **universe);
  const NebulaConfig config = runner.BaseConfig(5);
  auto a = runner.Run(workload, config, /*batch_mode=*/false,
                      /*exercise_obs=*/false);
  auto b = runner.Run(workload, config, /*batch_mode=*/false,
                      /*exercise_obs=*/false);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->lines, b->lines);
  EXPECT_EQ(a->Digest(), b->Digest());
}

TEST(DifferentialTest, SweepAllPairsDivergenceFree) {
  CheckOptions options;
  options.start_seed = 1;
  options.num_seeds = 8;
  options.shrink = false;
  std::ostringstream log;
  const auto summary = check::RunCheckSweep(options, log);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->pair_runs, 8u * std::size(check::kAllConfigPairs));
  EXPECT_EQ(summary->divergences, 0u) << log.str();
  EXPECT_EQ(summary->run_errors, 0u) << log.str();
}

/// End-to-end harness self-test: an injected config bug must be caught,
/// shrunk to a smaller stream that still reproduces, saved to a repro
/// file, loaded back, and replayed to the same verdict.
TEST(DifferentialTest, InjectedBugIsCaughtShrunkAndReplayable) {
  DiffOptions options;
  options.inject_bug = true;
  const DifferentialRunner runner(options);

  uint64_t bug_seed = 0;
  CheckWorkload failing;
  for (uint64_t seed = 1; seed <= 10 && bug_seed == 0; ++seed) {
    auto universe = check::BuildCheckUniverse(seed);
    ASSERT_TRUE(universe.ok());
    CheckWorkload workload = check::GenerateCheckWorkload(seed, **universe);
    const auto verdict = runner.RunPair(ConfigPair::kThreads, workload);
    ASSERT_TRUE(verdict.ok());
    if (verdict->diverged) {
      bug_seed = seed;
      failing = std::move(workload);
    }
  }
  ASSERT_NE(bug_seed, 0u)
      << "the injected bug diverged on none of 10 seeds";

  auto still_fails = [&](const std::vector<CheckAnnotation>& stream) {
    CheckWorkload candidate;
    candidate.seed = bug_seed;
    candidate.annotations = stream;
    const auto verdict = runner.RunPair(ConfigPair::kThreads, candidate);
    return verdict.ok() && verdict->diverged;
  };
  check::ShrinkStats stats;
  const std::vector<CheckAnnotation> shrunk = check::ShrinkAnnotations(
      failing.annotations, still_fails, /*max_evaluations=*/150, &stats);
  ASSERT_FALSE(shrunk.empty());
  EXPECT_LE(shrunk.size(), failing.annotations.size());
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_GT(stats.evaluations, 0u);

  ReproCase repro;
  repro.seed = bug_seed;
  repro.pair = ConfigPair::kThreads;
  repro.inject_bug = true;
  repro.annotations = shrunk;
  const std::string path =
      (std::filesystem::temp_directory_path() / "nebula_check_repro_ut.txt")
          .string();
  ASSERT_TRUE(check::SaveRepro(path, repro).ok());
  auto loaded = check::LoadRepro(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seed, repro.seed);
  EXPECT_EQ(loaded->pair, repro.pair);
  EXPECT_EQ(loaded->inject_bug, true);
  ASSERT_EQ(loaded->annotations.size(), shrunk.size());
  for (size_t i = 0; i < shrunk.size(); ++i) {
    EXPECT_EQ(loaded->annotations[i].text, shrunk[i].text);
    EXPECT_EQ(loaded->annotations[i].focal, shrunk[i].focal);
    EXPECT_EQ(loaded->annotations[i].author, shrunk[i].author);
  }
  const auto replay = check::ReplayRepro(*loaded);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->diverged);
  std::remove(path.c_str());

  // Without the bug the same workload is clean — the divergence really
  // came from the injected mis-configuration.
  const DifferentialRunner clean;
  const auto verdict = clean.RunPair(ConfigPair::kThreads, failing);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->diverged) << verdict->detail;
}

TEST(CrashSweepTest, SweepIsDivergenceFreeOverSeeds) {
  check::CrashOptions options;
  options.start_seed = 1;
  options.num_seeds = 3;
  options.shrink = false;
  const auto summary = check::RunCrashSweep(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->seeds_run, 3u);
  // Each seed runs one clean-shutdown case plus one sampled-fault case.
  EXPECT_EQ(summary->cases_run, 6u);
  EXPECT_EQ(summary->divergences, 0u) << summary->first_detail;
}

/// End-to-end crash-harness self-test: the planted replay bug (a 1e-9
/// confidence perturbation applied while replaying WAL task records) must
/// be caught by the sweep, shrunk, saved as a crash repro, loaded back,
/// and replayed to the same verdict — and must vanish when the bug is
/// disarmed.
TEST(CrashSweepTest, PlantedReplayBugIsCaughtShrunkAndReplayable) {
  const std::string repro_dir =
      (std::filesystem::temp_directory_path() / "nebula_crash_repro_ut")
          .string();
  std::filesystem::remove_all(repro_dir);
  std::filesystem::create_directories(repro_dir);

  check::CrashOptions options;
  options.start_seed = 1;
  options.num_seeds = 4;
  // The bug only perturbs records replayed from the WAL, so keep the
  // whole history there: no cadence snapshots.
  options.snapshot_every = 0;
  options.inject_replay_bug = true;
  options.repro_dir = repro_dir;
  const auto summary = check::RunCrashSweep(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_GT(summary->divergences, 0u)
      << "the planted replay bug diverged on none of 4 seeds";
  ASSERT_FALSE(summary->repro_paths.empty());
  EXPECT_NE(summary->first_detail.find("task"), std::string::npos)
      << summary->first_detail;

  auto loaded = check::LoadRepro(summary->repro_paths.front());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->crash);
  EXPECT_EQ(loaded->snapshot_every, 0u);
  EXPECT_TRUE(loaded->replay_bug);
  ASSERT_FALSE(loaded->annotations.empty());

  const auto replay = check::ReplayRepro(*loaded);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->diverged);

  // Disarm the bug: the very same crash case must be clean — the
  // divergence really came from the perturbed replay, not the harness.
  check::ReproCase fixed = *loaded;
  fixed.replay_bug = false;
  const auto clean = check::ReplayRepro(fixed);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE(clean->diverged) << clean->detail;

  std::filesystem::remove_all(repro_dir);
}

TEST(CrashSweepTest, CrashReproSurvivesSaveLoadRoundTrip) {
  ReproCase repro;
  repro.seed = 77;
  repro.crash = true;
  repro.crash_mode = check::CrashMode::kWalTornTail;
  repro.crash_skip = 13;
  repro.snapshot_every = 3;
  repro.replay_bug = true;
  CheckAnnotation a;
  a.author = "reviewer";
  a.text = "kinase observed in assay";
  repro.annotations.push_back(a);
  const std::string path =
      (std::filesystem::temp_directory_path() / "nebula_crash_repro_rt.txt")
          .string();
  ASSERT_TRUE(check::SaveRepro(path, repro).ok());
  auto loaded = check::LoadRepro(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seed, 77u);
  EXPECT_TRUE(loaded->crash);
  EXPECT_EQ(loaded->crash_mode, check::CrashMode::kWalTornTail);
  EXPECT_EQ(loaded->crash_skip, 13u);
  EXPECT_EQ(loaded->snapshot_every, 3u);
  EXPECT_TRUE(loaded->replay_bug);
  ASSERT_EQ(loaded->annotations.size(), 1u);
  EXPECT_EQ(loaded->annotations[0].text, a.text);
  std::remove(path.c_str());
}

TEST(CrashSweepTest, ParseCrashModeRoundTrips) {
  for (const check::CrashMode mode :
       {check::CrashMode::kCleanShutdown, check::CrashMode::kWalAppend,
        check::CrashMode::kWalTornTail, check::CrashMode::kSnapshotWrite}) {
    const auto parsed = check::ParseCrashMode(check::CrashModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
  EXPECT_FALSE(check::ParseCrashMode("bogus").ok());
}

TEST(DifferentialTest, ParseConfigPairRoundTrips) {
  for (ConfigPair pair : check::kAllConfigPairs) {
    const auto parsed = check::ParseConfigPair(check::ConfigPairName(pair));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), pair);
  }
  EXPECT_FALSE(check::ParseConfigPair("bogus").ok());
}

}  // namespace
}  // namespace nebula
