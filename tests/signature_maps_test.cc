#include <gtest/gtest.h>

#include "core/signature_maps.h"
#include "meta/nebula_meta.h"
#include "text/tokenizer.h"

namespace nebula {
namespace {

class SignatureMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(
        meta_.AddConcept("Protein", "protein", {{"pid"}, {"pname", "ptype"}})
            .ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("protein", "pid", "P[0-9]{5}").ok());
    ASSERT_TRUE(
        meta_.SetColumnOntology("protein", "ptype", {"kinase", "receptor"})
            .ok());
    builder_ = std::make_unique<SignatureMapBuilder>(&meta_);
  }

  NebulaMeta meta_;
  std::unique_ptr<SignatureMapBuilder> builder_;
};

TEST_F(SignatureMapTest, ConceptMapHighlightsTableAndColumnWords) {
  const auto tokens = Tokenize("the gene gid JW0014 grows");
  const SignatureMap map = builder_->BuildConceptMap(tokens, 0.6);
  ASSERT_EQ(map.words.size(), 5u);
  EXPECT_FALSE(map.words[0].emphasized());  // "the" (stopword)
  EXPECT_TRUE(map.words[1].emphasized());   // "gene" -> table
  EXPECT_TRUE(map.words[1].HasConceptMapping());
  EXPECT_TRUE(map.words[2].emphasized());   // "gid" -> column
  EXPECT_FALSE(map.words[3].emphasized());  // value word: not a concept
  EXPECT_FALSE(map.words[4].emphasized());  // filler
}

TEST_F(SignatureMapTest, ConceptMapKindsAreCorrect) {
  const auto tokens = Tokenize("gene gid");
  const SignatureMap map = builder_->BuildConceptMap(tokens, 0.6);
  ASSERT_TRUE(map.words[0].BestMapping() != nullptr);
  EXPECT_EQ(map.words[0].BestMapping()->kind, WordMapping::Kind::kTable);
  EXPECT_EQ(map.words[1].BestMapping()->kind, WordMapping::Kind::kColumn);
  EXPECT_EQ(map.words[1].BestMapping()->table, "gene");
  EXPECT_EQ(map.words[1].BestMapping()->column, "gid");
}

TEST_F(SignatureMapTest, ValueMapHighlightsPatternMatches) {
  const auto tokens = Tokenize("comparing JW0014 with grpC and banana");
  const SignatureMap map = builder_->BuildValueMap(tokens, 0.6);
  EXPECT_TRUE(map.words[1].emphasized());  // JW0014
  EXPECT_TRUE(map.words[1].HasValueMapping());
  EXPECT_EQ(map.words[1].BestMapping()->column, "gid");
  EXPECT_TRUE(map.words[3].emphasized());  // grpC
  EXPECT_EQ(map.words[3].BestMapping()->column, "name");
  EXPECT_FALSE(map.words[5].emphasized());  // banana
}

TEST_F(SignatureMapTest, ValueMapHighlightsOntologyMembers) {
  const auto tokens = Tokenize("a kinase activity");
  const SignatureMap map = builder_->BuildValueMap(tokens, 0.6);
  EXPECT_TRUE(map.words[1].emphasized());
  EXPECT_EQ(map.words[1].BestMapping()->column, "ptype");
}

TEST_F(SignatureMapTest, EpsilonCutoffFiltersWeakMappings) {
  const auto tokens = Tokenize("locus JW0014");
  // "locus" is a synonym of "gene" scoring 0.7: present at eps 0.6,
  // absent at eps 0.8.
  const SignatureMap at06 = builder_->BuildConceptMap(tokens, 0.6);
  const SignatureMap at08 = builder_->BuildConceptMap(tokens, 0.8);
  EXPECT_TRUE(at06.words[0].emphasized());
  EXPECT_FALSE(at08.words[0].emphasized());
}

TEST_F(SignatureMapTest, StopwordsNeverEmphasized) {
  const auto tokens = Tokenize("it is the and of");
  const SignatureMap cmap = builder_->BuildConceptMap(tokens, 0.1);
  const SignatureMap vmap = builder_->BuildValueMap(tokens, 0.1);
  EXPECT_EQ(cmap.NumEmphasized(), 0u);
  EXPECT_EQ(vmap.NumEmphasized(), 0u);
}

TEST_F(SignatureMapTest, OverlayMergesMappingsPositionWise) {
  const auto tokens = Tokenize("gene JW0014");
  const SignatureMap cmap = builder_->BuildConceptMap(tokens, 0.6);
  const SignatureMap vmap = builder_->BuildValueMap(tokens, 0.6);
  const SignatureMap context = SignatureMapBuilder::Overlay(cmap, vmap);
  ASSERT_EQ(context.words.size(), 2u);
  EXPECT_TRUE(context.words[0].HasConceptMapping());
  EXPECT_FALSE(context.words[0].HasValueMapping());
  EXPECT_TRUE(context.words[1].HasValueMapping());
  EXPECT_FALSE(context.words[1].HasConceptMapping());
}

TEST_F(SignatureMapTest, AmbiguousWordKeepsMultipleMappings) {
  // "P00001" matches the pid pattern only; "kinase" matches the protein
  // table (hyponym) in the concept map AND the ptype ontology in the
  // value map -> after overlay it carries both kinds.
  const auto tokens = Tokenize("kinase P00001");
  const SignatureMap context = SignatureMapBuilder::Overlay(
      builder_->BuildConceptMap(tokens, 0.6),
      builder_->BuildValueMap(tokens, 0.6));
  EXPECT_TRUE(context.words[0].HasConceptMapping());
  EXPECT_TRUE(context.words[0].HasValueMapping());
  EXPECT_GE(context.words[0].mappings.size(), 2u);
}

TEST_F(SignatureMapTest, NumEmphasizedCounts) {
  const auto tokens = Tokenize("gene JW0014 banana");
  const SignatureMap context = SignatureMapBuilder::Overlay(
      builder_->BuildConceptMap(tokens, 0.6),
      builder_->BuildValueMap(tokens, 0.6));
  EXPECT_EQ(context.NumEmphasized(), 2u);
}

TEST_F(SignatureMapTest, BestMappingPicksHighestWeight) {
  SigWord word;
  word.mappings = {{WordMapping::Kind::kValue, "a", "b", 0.5},
                   {WordMapping::Kind::kValue, "c", "d", 0.9},
                   {WordMapping::Kind::kTable, "e", "", 0.7}};
  ASSERT_NE(word.BestMapping(), nullptr);
  EXPECT_EQ(word.BestMapping()->table, "c");
  SigWord empty;
  EXPECT_EQ(empty.BestMapping(), nullptr);
}

TEST_F(SignatureMapTest, EmptyAnnotationYieldsEmptyMaps) {
  const auto tokens = Tokenize("");
  EXPECT_TRUE(builder_->BuildConceptMap(tokens, 0.5).words.empty());
  EXPECT_TRUE(builder_->BuildValueMap(tokens, 0.5).words.empty());
}

}  // namespace
}  // namespace nebula
