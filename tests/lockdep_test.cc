// Runtime lock-order witness (common/lockdep.h): ABBA inversions are
// reported with BOTH rank chains, self-deadlock is caught before the
// hang, try-lock is the sanctioned out-of-order escape hatch, and the
// common.lockdep.check fault point plants a deterministic violation.
//
// In builds without -DNEBULA_LOCKDEP=ON the witness compiles out to
// nothing; a single no-op-macro test keeps the binary meaningful there.

#include <gtest/gtest.h>

#include "common/lock_rank.h"
#include "common/sync.h"

#if NEBULA_LOCKDEP_ENABLED

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/fault_points.h"
#include "common/lockdep.h"

namespace nebula {
namespace {

/// Arms the witness in report mode for the test body and disarms it on
/// exit, so the surrounding gtest machinery never runs witnessed.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::ResetForTest();
    lockdep::SetFailureMode(lockdep::FailureMode::kReport);
    lockdep::SetEnabled(true);
  }
  void TearDown() override {
    lockdep::SetEnabled(false);
    lockdep::SetFailureMode(lockdep::FailureMode::kAbort);
    lockdep::ResetForTest();
  }
};

TEST_F(LockdepTest, GoodNestingRecordsEdgesAndNoViolations) {
  Mutex build(kLockRankStorageIndexBuild);  // tier 50
  Mutex pool(kLockRankCommonPool);          // tier 70
  {
    MutexLock outer(build);
    MutexLock inner(pool);
    const auto held = lockdep::HeldRanks();
    ASSERT_EQ(held.size(), 2u);
    EXPECT_STREQ(held[0]->name, "storage.index_build");
    EXPECT_STREQ(held[1]->name, "common.pool");
  }
  EXPECT_EQ(lockdep::EdgesObserved(), 1u);
  EXPECT_EQ(lockdep::ViolationsDetected(), 0u);
  EXPECT_TRUE(lockdep::TakeViolations().empty());
}

TEST_F(LockdepTest, InversionReportsBothChains) {
  Mutex build(kLockRankStorageIndexBuild);  // tier 50
  Mutex pool(kLockRankCommonPool);          // tier 70
  {
    // First the declared order, so the witness records the edge (and the
    // chain that observed it)...
    MutexLock outer(build);
    MutexLock inner(pool);
  }
  {
    // ...then the inversion, on FRESH mutex instances: the witness
    // orders by rank, so the violation still fires, while TSan (which
    // orders by address) sees new mutexes and stays quiet — this test
    // must pass under -DNEBULA_SANITIZE=thread too. Report mode turns
    // the would-be abort into a recorded violation.
    Mutex pool2(kLockRankCommonPool);
    Mutex build2(kLockRankStorageIndexBuild);
    MutexLock outer(pool2);
    MutexLock inner(build2);
  }
  const auto violations = lockdep::TakeViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "order");
  const std::string& detail = violations[0].detail;
  EXPECT_NE(detail.find("storage.index_build (tier 50)"), std::string::npos)
      << detail;
  EXPECT_NE(detail.find("common.pool (tier 70)"), std::string::npos)
      << detail;
  // Both stacks of the ABBA pair: this thread's chain plus the chain
  // that first observed the opposite edge.
  EXPECT_NE(detail.find("this thread's chain"), std::string::npos) << detail;
  EXPECT_NE(detail.find("first-observed opposing chain"), std::string::npos)
      << detail;
  EXPECT_EQ(lockdep::ViolationsDetected(), 1u);
}

TEST_F(LockdepTest, SelfDeadlockCaughtBeforeTheHang) {
  // Through a real Mutex the second Lock() would block forever, so the
  // unit drives the witness API directly with a dummy address.
  int dummy = 0;
  lockdep::OnAcquire(&dummy, &kLockRankCommonPool);
  lockdep::OnAcquire(&dummy, &kLockRankCommonPool);
  const auto violations = lockdep::TakeViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "self-deadlock");
  EXPECT_NE(violations[0].detail.find("already held by this thread"),
            std::string::npos);
  lockdep::OnRelease(&dummy);
  lockdep::OnRelease(&dummy);
  EXPECT_TRUE(lockdep::HeldRanks().empty());
}

TEST_F(LockdepTest, TryLockSkipsTheOrderCheck) {
  Mutex build(kLockRankStorageIndexBuild);  // tier 50
  Mutex pool(kLockRankCommonPool);          // tier 70
  MutexLock outer(pool);
  // Out of declared order, but non-blocking: cannot close a deadlock
  // cycle, so the witness admits it without complaint...
  ASSERT_TRUE(build.TryLock());
  EXPECT_EQ(lockdep::ViolationsDetected(), 0u);
  // ...yet it joins the held stack, outermost first.
  const auto held = lockdep::HeldRanks();
  ASSERT_EQ(held.size(), 2u);
  EXPECT_STREQ(held[1]->name, "storage.index_build");
  build.Unlock();
}

TEST_F(LockdepTest, PlantedFaultRecordsDeterministicViolation) {
  Mutex pool(kLockRankCommonPool);
  {
    ScopedFault plant(kFaultCommonLockdepCheck, FaultSpec{.max_fires = 1});
    MutexLock lock(pool);
  }
  const auto violations = lockdep::TakeViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "planted");
  // The detail is a fixed string — chain- and address-free — so a
  // NebulaCheck transcript diverges identically on every replay.
  EXPECT_EQ(violations[0].detail,
            "nebula lockdep: planted inversion via fault point "
            "common.lockdep.check\n");
}

TEST_F(LockdepTest, UnrankedMutexesAreTolerated) {
  Mutex ranked(kLockRankCommonPool);
  Mutex unranked;
  MutexLock outer(ranked);
  MutexLock inner(unranked);  // no rank: skipped, not reported
  EXPECT_EQ(lockdep::ViolationsDetected(), 0u);
  EXPECT_EQ(lockdep::HeldRanks().size(), 1u);
}

TEST_F(LockdepTest, ResetClearsGraphAndCounters) {
  Mutex build(kLockRankStorageIndexBuild);
  Mutex pool(kLockRankCommonPool);
  {
    MutexLock outer(build);
    MutexLock inner(pool);
  }
  EXPECT_EQ(lockdep::EdgesObserved(), 1u);
  lockdep::ResetForTest();
  EXPECT_EQ(lockdep::EdgesObserved(), 0u);
  EXPECT_EQ(lockdep::ViolationsDetected(), 0u);
}

}  // namespace
}  // namespace nebula

#else  // !NEBULA_LOCKDEP_ENABLED

namespace nebula {
namespace {

TEST(LockdepDisabledTest, MacrosCompileToNothing) {
  // The witness is compiled out: ranked construction still works and the
  // sync wrappers cost nothing extra. The NebulaCheck `lockdep` pair
  // proves bit-identical behavior across the two builds.
  Mutex mu(kLockRankCommonPool);
  MutexLock lock(mu);
  SUCCEED();
}

}  // namespace
}  // namespace nebula

#endif  // NEBULA_LOCKDEP_ENABLED
