#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "core/acg.h"
#include "core/focal_spreading.h"
#include "keyword/mini_db.h"
#include "storage/schema.h"

namespace nebula {
namespace {

const TupleId kT0{0, 0};
const TupleId kT1{0, 1};
const TupleId kT2{0, 2};
const TupleId kT3{0, 3};
const TupleId kFar{0, 99};

/// Chain graph t0 - t1 - t2 - t3 built via a stable-capable ACG.
class FocalSpreadingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AnnotationStore store;
    for (int i = 0; i < 3; ++i) {
      const AnnotationId a = store.AddAnnotation("x");
      ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i)}).ok());
      ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i + 1)}).ok());
    }
    acg_.BuildFromStore(store);
  }

  /// Drives the ACG through one quiet batch (plus the attachment that
  /// closes it) so it reports stable.
  void MakeStable() {
    AcgStabilityConfig config = acg_.stability_config();
    for (size_t a = 0; a <= config.batch_size; ++a) {
      // Re-attachments along existing edges: no new edges created.
      acg_.AddAttachment(1000 + a, kT0, {});
      acg_.AddAttachment(1000 + a, kT1, {kT0});
    }
  }

  Acg acg_;
};

TEST_F(FocalSpreadingTest, RequiresStableAcgByDefault) {
  FocalSpreading spreading(&acg_);
  EXPECT_FALSE(acg_.stable());
  EXPECT_FALSE(spreading.ShouldApproximate({kT0}));
  MakeStable();
  EXPECT_TRUE(acg_.stable());
  EXPECT_TRUE(spreading.ShouldApproximate({kT0}));
}

TEST_F(FocalSpreadingTest, StabilityRequirementCanBeWaived) {
  FocalSpreadingParams params;
  params.require_stable_acg = false;
  FocalSpreading spreading(&acg_, params);
  EXPECT_TRUE(spreading.ShouldApproximate({kT0}));
}

TEST_F(FocalSpreadingTest, NoApproximationForUnknownFocal) {
  FocalSpreadingParams params;
  params.require_stable_acg = false;
  FocalSpreading spreading(&acg_, params);
  EXPECT_FALSE(spreading.ShouldApproximate({kFar}));
  EXPECT_FALSE(spreading.ShouldApproximate({}));
  // Mixed: one known focal suffices.
  EXPECT_TRUE(spreading.ShouldApproximate({kFar, kT1}));
}

TEST_F(FocalSpreadingTest, FixedScopeMiniDb) {
  FocalSpreadingParams params;
  params.selection = KSelection::kFixed;
  params.fixed_k = 1;
  FocalSpreading spreading(&acg_, params);
  EXPECT_EQ(spreading.EffectiveK(), 1u);
  const MiniDb mini = spreading.BuildMiniDb({kT0});
  EXPECT_EQ(mini.size(), 2u);  // t0 + t1
  EXPECT_TRUE(mini.Contains(kT0));
  EXPECT_TRUE(mini.Contains(kT1));
  EXPECT_FALSE(mini.Contains(kT2));
}

TEST_F(FocalSpreadingTest, LargerKGrowsMiniDb) {
  FocalSpreading spreading(&acg_);
  const MiniDb k1 = spreading.BuildMiniDb({kT0}, 1);
  const MiniDb k2 = spreading.BuildMiniDb({kT0}, 2);
  const MiniDb k3 = spreading.BuildMiniDb({kT0}, 3);
  EXPECT_LT(k1.size(), k2.size());
  EXPECT_LT(k2.size(), k3.size());
  EXPECT_TRUE(k3.Contains(kT3));
}

TEST_F(FocalSpreadingTest, MultiFocalUnion) {
  FocalSpreading spreading(&acg_);
  const MiniDb mini = spreading.BuildMiniDb({kT0, kT3}, 1);
  EXPECT_EQ(mini.size(), 4u);  // whole chain covered from both ends
}

TEST_F(FocalSpreadingTest, ProfileDrivenKSelection) {
  // Profile says 95% of candidates are within 2 hops.
  for (int i = 0; i < 95; ++i) acg_.RecordProfilePoint(2);
  for (int i = 0; i < 5; ++i) acg_.RecordProfilePoint(4);
  FocalSpreadingParams params;
  params.selection = KSelection::kProfileDriven;
  params.desired_recall = 0.95;
  params.fixed_k = 9;  // fallback, must not be used
  FocalSpreading spreading(&acg_, params);
  EXPECT_EQ(spreading.EffectiveK(), 2u);
}

TEST_F(FocalSpreadingTest, ProfileDrivenFallsBackWhenEmpty) {
  FocalSpreadingParams params;
  params.selection = KSelection::kProfileDriven;
  params.fixed_k = 5;
  FocalSpreading spreading(&acg_, params);
  EXPECT_EQ(spreading.EffectiveK(), 5u);
}

TEST_F(FocalSpreadingTest, MiniDbOfUnknownFocalIsEmpty) {
  FocalSpreading spreading(&acg_);
  EXPECT_TRUE(spreading.BuildMiniDb({kFar}, 3).empty());
}

}  // namespace
}  // namespace nebula
