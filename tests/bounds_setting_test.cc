#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "core/bounds_setting.h"
#include "core/identify.h"
#include "storage/schema.h"

namespace nebula {
namespace {

TupleId Tid(uint64_t row) { return {0, row}; }

CandidateTuple Candidate(const TupleId& t, double conf) {
  CandidateTuple c;
  c.tuple = t;
  c.confidence = conf;
  return c;
}

/// A synthetic discovery function with a clean confidence separation:
/// true missing attachments score 0.9, junk scores 0.2. An ideal bounds
/// setting can then fully automate (lower/upper between 0.2 and 0.9)
/// with zero expert effort.
std::vector<CandidateTuple> CleanDiscovery(
    AnnotationId annotation, const std::vector<TupleId>& focal) {
  (void)focal;
  return {
      Candidate(Tid(annotation * 10 + 1), 0.9),  // true, to rediscover
      Candidate(Tid(annotation * 10 + 2), 0.9),  // true
      Candidate(Tid(900 + annotation), 0.2),     // junk
  };
}

std::vector<TrainingAnnotation> CleanTraining(size_t n) {
  std::vector<TrainingAnnotation> training;
  for (size_t a = 0; a < n; ++a) {
    TrainingAnnotation ta;
    ta.annotation = a;
    ta.ideal_tuples = {Tid(a * 10), Tid(a * 10 + 1), Tid(a * 10 + 2)};
    training.push_back(ta);
  }
  return training;
}

TEST(BoundsSettingTest, CleanSeparationFullyAutomates) {
  BoundsSettingConfig config;
  config.max_fn = 0.05;
  config.max_fp = 0.05;
  const BoundsSettingResult result =
      BoundsSetting(CleanTraining(5), CleanDiscovery, config);
  ASSERT_TRUE(result.feasible);
  // The chosen bounds must auto-reject 0.2 and auto-accept 0.9.
  EXPECT_GT(result.best.lower, 0.2);
  EXPECT_LT(result.best.upper, 0.9);
  // And the effort at the chosen point is zero.
  for (const auto& g : result.grid) {
    if (g.bounds.lower == result.best.lower &&
        g.bounds.upper == result.best.upper) {
      EXPECT_DOUBLE_EQ(g.averaged.mf, 0.0);
      EXPECT_DOUBLE_EQ(g.averaged.fn, 0.0);
      EXPECT_DOUBLE_EQ(g.averaged.fp, 0.0);
    }
  }
}

TEST(BoundsSettingTest, GridContainsOnlyOrderedPairs) {
  const BoundsSettingResult result =
      BoundsSetting(CleanTraining(2), CleanDiscovery);
  EXPECT_FALSE(result.grid.empty());
  for (const auto& g : result.grid) {
    EXPECT_LE(g.bounds.lower, g.bounds.upper);
  }
}

/// Ambiguous discovery: correct and junk candidates overlap at 0.5, so
/// automation must either leak FPs or drop FNs; experts are needed.
std::vector<CandidateTuple> AmbiguousDiscovery(
    AnnotationId annotation, const std::vector<TupleId>& focal) {
  (void)focal;
  return {
      Candidate(Tid(annotation * 10 + 1), 0.5),  // true
      Candidate(Tid(900 + annotation), 0.5),     // junk, same confidence
  };
}

TEST(BoundsSettingTest, AmbiguityForcesExpertInvolvement) {
  std::vector<TrainingAnnotation> training;
  for (size_t a = 0; a < 4; ++a) {
    TrainingAnnotation ta;
    ta.annotation = a;
    ta.ideal_tuples = {Tid(a * 10), Tid(a * 10 + 1)};
    training.push_back(ta);
  }
  BoundsSettingConfig config;
  config.max_fn = 0.1;
  config.max_fp = 0.1;
  const BoundsSettingResult result =
      BoundsSetting(training, AmbiguousDiscovery, config);
  ASSERT_TRUE(result.feasible);
  // The winning bounds must bracket 0.5 so those candidates pend.
  EXPECT_LE(result.best.lower, 0.5);
  EXPECT_GE(result.best.upper, 0.5);
  // Its effort is nonzero.
  for (const auto& g : result.grid) {
    if (g.bounds.lower == result.best.lower &&
        g.bounds.upper == result.best.upper) {
      EXPECT_GT(g.averaged.mf, 0.0);
    }
  }
}

TEST(BoundsSettingTest, InfeasibleConstraintsFallBackToLeastViolation) {
  // Junk and truth perfectly inverted: no bounds satisfy strict limits.
  auto inverted = [](AnnotationId annotation,
                     const std::vector<TupleId>& focal)
      -> std::vector<CandidateTuple> {
    (void)focal;
    return {Candidate(Tid(annotation * 10 + 1), 0.1),   // true, low conf
            Candidate(Tid(900 + annotation), 0.95)};    // junk, high conf
  };
  std::vector<TrainingAnnotation> training;
  for (size_t a = 0; a < 3; ++a) {
    TrainingAnnotation ta;
    ta.annotation = a;
    ta.ideal_tuples = {Tid(a * 10), Tid(a * 10 + 1)};
    training.push_back(ta);
  }
  BoundsSettingConfig config;
  config.max_fn = 0.0;
  config.max_fp = 0.0;
  config.grid = {0.5};  // single degenerate point: auto-only, both wrong
  const BoundsSettingResult result = BoundsSetting(training, inverted, config);
  EXPECT_FALSE(result.feasible);
  EXPECT_DOUBLE_EQ(result.best.lower, 0.5);
  EXPECT_DOUBLE_EQ(result.best.upper, 0.5);
}

TEST(BoundsSettingTest, DistortionKeepControlsFocalSize) {
  std::vector<size_t> observed_focal_sizes;
  auto spy = [&](AnnotationId annotation,
                 const std::vector<TupleId>& focal)
      -> std::vector<CandidateTuple> {
    (void)annotation;
    observed_focal_sizes.push_back(focal.size());
    return {};
  };
  BoundsSettingConfig config;
  config.distortion_keep = 2;
  config.grid = {0.5};
  BoundsSetting(CleanTraining(3), spy, config);
  ASSERT_EQ(observed_focal_sizes.size(), 3u);
  for (size_t s : observed_focal_sizes) EXPECT_EQ(s, 2u);
}

TEST(BoundsSettingTest, EmptyTrainingIsSafe) {
  const BoundsSettingResult result = BoundsSetting({}, CleanDiscovery);
  EXPECT_FALSE(result.grid.empty());
}

TEST(BoundsSettingTest, MhGuidanceBreaksTies) {
  // Two settings with equal (zero) M_F exist; with use_mh_guidance the
  // higher-M_H one must win among equals. With all-zero M_H the choice is
  // just the first minimal-M_F point; this test asserts determinism.
  BoundsSettingConfig config;
  const BoundsSettingResult r1 =
      BoundsSetting(CleanTraining(3), CleanDiscovery, config);
  const BoundsSettingResult r2 =
      BoundsSetting(CleanTraining(3), CleanDiscovery, config);
  EXPECT_DOUBLE_EQ(r1.best.lower, r2.best.lower);
  EXPECT_DOUBLE_EQ(r1.best.upper, r2.best.upper);
}

}  // namespace
}  // namespace nebula
