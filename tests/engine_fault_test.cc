// Fault-injected pipeline tests: a mid-batch storage/SQL failure must
// surface as a clean error — no crash, no partial ACG corruption, metrics
// still serializable — and the engine must keep working once the fault
// clears. Labeled "fault" in ctest.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>

#include "annotation/annotation_store.h"
#include "common/fault.h"
#include "common/fault_points.h"
#include "common/status.h"
#include "core/acg.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "sql/session.h"
#include "storage/table.h"
#include "testing/check_workload.h"

namespace nebula {
namespace {

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().Clear();
    auto universe = check::BuildCheckUniverse(2026);
    ASSERT_TRUE(universe.ok()) << universe.status().ToString();
    universe_ = std::move(universe).value();
    workload_ = check::GenerateCheckWorkload(2026, *universe_);
    ASSERT_GE(workload_.annotations.size(), 3u);
  }
  void TearDown() override { FaultRegistry::Global().Clear(); }

  std::vector<AnnotationRequest> Requests() const {
    std::vector<AnnotationRequest> requests;
    for (const check::CheckAnnotation& a : workload_.annotations) {
      requests.push_back({a.text, a.focal, a.author});
    }
    return requests;
  }

  /// The no-corruption oracle: the incrementally maintained ACG must be
  /// structurally identical to one rebuilt from scratch off the store.
  void ExpectAcgConsistent(NebulaEngine* engine) {
    Acg rebuilt;
    rebuilt.BuildFromStore(*engine->store());
    EXPECT_EQ(engine->acg().Fingerprint(), rebuilt.Fingerprint());
  }

  std::unique_ptr<check::CheckUniverse> universe_;
  check::CheckWorkload workload_;
};

TEST_F(EngineFaultTest, MidBatchQueryFaultSurfacesCleanly) {
  NebulaConfig config;
  config.trace_capacity = 0;
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  const size_t annotations_before = universe_->store.num_annotations();

  {
    // Let a few statements through, then fail every query execution.
    FaultSpec spec;
    spec.code = StatusCode::kCorruption;
    spec.message = "storage offline";
    spec.skip_calls = 2;
    ScopedFault fault("storage.query.execute", spec);
    const auto reports = engine.InsertAnnotations(Requests());
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find("storage.query.execute"),
              std::string::npos);
  }

  // Stage 0 of the failed annotation committed (store + focal) before
  // Stage 2 hit the fault — that is the documented contract. What must
  // NOT exist is a half-applied Stage 2/3: the incremental ACG has to
  // match a from-scratch rebuild exactly.
  ExpectAcgConsistent(&engine);
  EXPECT_GT(universe_->store.num_annotations(), annotations_before);
  for (const Attachment& att : universe_->store.AllAttachments()) {
    if (att.type == AttachmentType::kTrue) {
      EXPECT_DOUBLE_EQ(att.weight, 1.0);
    } else {
      EXPECT_GT(att.weight, 0.0);
      EXPECT_LT(att.weight, 1.0);
    }
  }
#if NEBULA_OBS_ENABLED
  // Metrics stay serializable mid-disaster.
  EXPECT_FALSE(NebulaEngine::DumpMetrics().empty());
#else
  // Instrumentation compiled out: the dump is empty but must not crash.
  (void)NebulaEngine::DumpMetrics();
#endif

  // Fault cleared: the engine keeps working.
  const check::CheckAnnotation& again = workload_.annotations.front();
  const auto report =
      engine.InsertAnnotation(again.text, again.focal, "retry");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectAcgConsistent(&engine);
}

TEST_F(EngineFaultTest, SharedExecutorFaultDoesNotPoisonTheBatch) {
  NebulaConfig config;
  config.trace_capacity = 0;
  config.identify.shared_execution = true;
  config.num_threads = 2;
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  {
    FaultSpec spec;
    spec.max_fires = 1;  // exactly one statement fails
    ScopedFault fault("keyword.shared.statement", spec);
    const auto reports = engine.InsertAnnotations(Requests());
    // The one poisoned annotation fails the batch call with a clean
    // error; nothing crashes even with pool workers hitting the fault.
    ASSERT_FALSE(reports.ok());
  }
  ExpectAcgConsistent(&engine);
  const auto reports = engine.InsertAnnotations(Requests());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_EQ(reports->size(), workload_.annotations.size());
  ExpectAcgConsistent(&engine);
}

TEST_F(EngineFaultTest, ThreadPoolFaultFallsBackToInlineAndMatches) {
  // Baseline: pooled run without faults.
  auto clean_universe = check::BuildCheckUniverse(2026);
  ASSERT_TRUE(clean_universe.ok());
  NebulaConfig config;
  config.trace_capacity = 0;
  config.num_threads = 3;
  NebulaEngine clean_engine(&(*clean_universe)->catalog,
                            &(*clean_universe)->store,
                            &(*clean_universe)->meta, config);
  clean_engine.RebuildAcg();
  const auto expected = clean_engine.InsertAnnotations(Requests());
  ASSERT_TRUE(expected.ok());

  // Same run with every pool submission refused: everything degrades to
  // inline execution with identical results.
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  ScopedFault fault("threadpool.submit");
  const auto reports = engine.InsertAnnotations(Requests());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), expected->size());
  for (size_t i = 0; i < reports->size(); ++i) {
    ASSERT_EQ((*reports)[i].candidates.size(),
              (*expected)[i].candidates.size());
    for (size_t c = 0; c < (*reports)[i].candidates.size(); ++c) {
      EXPECT_EQ((*reports)[i].candidates[c].tuple,
                (*expected)[i].candidates[c].tuple);
      EXPECT_DOUBLE_EQ((*reports)[i].candidates[c].confidence,
                       (*expected)[i].candidates[c].confidence);
    }
  }
  ExpectAcgConsistent(&engine);
}

TEST_F(EngineFaultTest, SqlSessionFaultIsCleanAndRecoverable) {
  NebulaConfig config;
  config.trace_capacity = 0;
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  sql::SqlSession session(&engine);
  {
    ScopedFault fault("sql.session.execute");
    const auto result = session.Execute("SHOW TABLES");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  }
  const auto result = session.Execute("SHOW TABLES");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectAcgConsistent(&engine);
}

TEST_F(EngineFaultTest, ValueIndexBuildFaultDegradesToScanNotCorruption) {
  // Baseline: clean accelerated run on an identical universe.
  auto clean_universe = check::BuildCheckUniverse(2026);
  ASSERT_TRUE(clean_universe.ok());
  NebulaConfig config;
  config.trace_capacity = 0;
  NebulaEngine clean_engine(&(*clean_universe)->catalog,
                            &(*clean_universe)->store,
                            &(*clean_universe)->meta, config);
  clean_engine.RebuildAcg();
  const auto expected = clean_engine.InsertAnnotations(Requests());
  ASSERT_TRUE(expected.ok());

  // Same run with every value-index build failing: all tables latch into
  // permanent scan fallback. Results must be identical — degraded, never
  // corrupt — and no call may surface the fault as an error.
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  ScopedFault fault("storage.valueindex.build");
  const auto reports = engine.InsertAnnotations(Requests());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_GT(FaultRegistry::Global().FireCount("storage.valueindex.build"),
            0u);
  ASSERT_EQ(reports->size(), expected->size());
  for (size_t i = 0; i < reports->size(); ++i) {
    ASSERT_EQ((*reports)[i].candidates.size(),
              (*expected)[i].candidates.size());
    for (size_t c = 0; c < (*reports)[i].candidates.size(); ++c) {
      EXPECT_EQ((*reports)[i].candidates[c].tuple,
                (*expected)[i].candidates[c].tuple);
      EXPECT_DOUBLE_EQ((*reports)[i].candidates[c].confidence,
                       (*expected)[i].candidates[c].confidence);
    }
  }
  ExpectAcgConsistent(&engine);

  // The failure is sticky by design: even after the fault clears, a table
  // that failed its build serves scans rather than retry into a
  // half-built index.
  for (size_t t = 0; t < universe_->catalog.num_tables(); ++t) {
    const Table* table =
        universe_->catalog.GetTableById(static_cast<uint32_t>(t));
    const Table::ValueIndexInfo info = table->value_index_info();
    if (info.failed) {
      EXPECT_EQ(table->TryValueIndex(), nullptr);
      EXPECT_FALSE(info.built);
    }
  }
}

TEST_F(EngineFaultTest, PlanCacheFillFaultDegradesToRecompile) {
  NebulaConfig config;
  config.trace_capacity = 0;
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  {
    ScopedFault fault("core.plancache.fill");
    const auto reports = engine.InsertAnnotations(Requests());
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    EXPECT_GT(FaultRegistry::Global().FireCount("core.plancache.fill"), 0u);
    // Every fill was refused: nothing may linger in the cache.
    EXPECT_EQ(engine.plan_cache().size(), 0u);
  }
  ExpectAcgConsistent(&engine);
  // Fault cleared: the cache fills again.
  const check::CheckAnnotation& again = workload_.annotations.front();
  ASSERT_TRUE(engine.InsertAnnotation(again.text, again.focal, "r").ok());
  EXPECT_GT(engine.plan_cache().size(), 0u);
}

TEST_F(EngineFaultTest, ResultCacheFillFaultDegradesToReexecution) {
  // Candidates under a refused statement-result memo must equal a clean
  // run's bit for bit — the memo may only ever change wall time.
  auto clean_universe = check::BuildCheckUniverse(2026);
  ASSERT_TRUE(clean_universe.ok());
  NebulaConfig config;
  config.trace_capacity = 0;
  NebulaEngine clean_engine(&(*clean_universe)->catalog,
                            &(*clean_universe)->store,
                            &(*clean_universe)->meta, config);
  clean_engine.RebuildAcg();
  const auto expected = clean_engine.InsertAnnotations(Requests());
  ASSERT_TRUE(expected.ok());

  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  ScopedFault fault("keyword.resultcache.fill");
  const auto reports = engine.InsertAnnotations(Requests());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_GT(FaultRegistry::Global().FireCount("keyword.resultcache.fill"),
            0u);
  EXPECT_EQ(engine.search_engine().result_cache_size(), 0u);
  ASSERT_EQ(reports->size(), expected->size());
  for (size_t i = 0; i < reports->size(); ++i) {
    ASSERT_EQ((*reports)[i].candidates.size(),
              (*expected)[i].candidates.size());
    for (size_t c = 0; c < (*reports)[i].candidates.size(); ++c) {
      EXPECT_EQ((*reports)[i].candidates[c].tuple,
                (*expected)[i].candidates[c].tuple);
      EXPECT_DOUBLE_EQ((*reports)[i].candidates[c].confidence,
                       (*expected)[i].candidates[c].confidence);
    }
  }
  ExpectAcgConsistent(&engine);
}

TEST_F(EngineFaultTest, TableInsertFaultRejectsRowWithoutSideEffects) {
  Table* table = universe_->catalog.GetTableById(0);
  const uint64_t rows_before = table->num_rows();
  {
    ScopedFault fault("storage.table.insert");
    const auto rid = table->Insert({Value("ZZ999"), Value("Probe1"),
                                    Value("kinase"), Value(int64_t{1}),
                                    Value("observed kinase")});
    ASSERT_FALSE(rid.ok());
  }
  EXPECT_EQ(table->num_rows(), rows_before);
  const auto rid = table->Insert({Value("ZZ999"), Value("Probe1"),
                                  Value("kinase"), Value(int64_t{1}),
                                  Value("observed kinase")});
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  EXPECT_EQ(table->num_rows(), rows_before + 1);
}

TEST_F(EngineFaultTest, DurabilityFaultUnderPooledBatchSurfacesCleanly) {
  // A refused WAL append inside a pooled batch must fail the batch with
  // a clean error attributed to the fault point — no crash, no ACG
  // corruption — and the engine (journal included) must keep working
  // once the fault clears.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("nebula_engine_fault_dur_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  NebulaConfig config;
  config.trace_capacity = 0;
  config.num_threads = 3;
  config.durability_dir = dir;
  config.snapshot_every_n = 2;
  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  ASSERT_TRUE(engine.OpenDurability().ok());
  {
    FaultSpec spec;
    spec.skip_calls = 3;
    spec.max_fires = 1;
    ScopedFault fault(kFaultDurabilityWalAppend, spec);
    const auto reports = engine.InsertAnnotations(Requests());
    ASSERT_FALSE(reports.ok());
    EXPECT_NE(reports.status().message().find(kFaultDurabilityWalAppend),
              std::string::npos);
  }
  ExpectAcgConsistent(&engine);
  const auto reports = engine.InsertAnnotations(Requests());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_EQ(reports->size(), workload_.annotations.size());
  ExpectAcgConsistent(&engine);
  std::filesystem::remove_all(dir);
}

TEST_F(EngineFaultTest, EventLogWriteFaultDropsEventsNotResults) {
  // A sink that cannot accept wide-event lines (disk full, peer gone)
  // must degrade to dropped-events-with-a-counter: engine results match
  // a clean run bit for bit, and logging resumes once the fault clears.
  auto clean_universe = check::BuildCheckUniverse(2026);
  ASSERT_TRUE(clean_universe.ok());
  NebulaConfig config;
  config.trace_capacity = 0;
  NebulaEngine clean_engine(&(*clean_universe)->catalog,
                            &(*clean_universe)->store,
                            &(*clean_universe)->meta, config);
  clean_engine.RebuildAcg();
  const auto expected = clean_engine.InsertAnnotations(Requests());
  ASSERT_TRUE(expected.ok());

  NebulaEngine engine(&universe_->catalog, &universe_->store,
                      &universe_->meta, config);
  engine.RebuildAcg();
  {
    ScopedFault fault("obs.eventlog.write");
    const auto reports = engine.InsertAnnotations(Requests());
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_EQ(reports->size(), expected->size());
    for (size_t i = 0; i < reports->size(); ++i) {
      ASSERT_EQ((*reports)[i].candidates.size(),
                (*expected)[i].candidates.size());
      for (size_t c = 0; c < (*reports)[i].candidates.size(); ++c) {
        EXPECT_EQ((*reports)[i].candidates[c].tuple,
                  (*expected)[i].candidates[c].tuple);
        EXPECT_DOUBLE_EQ((*reports)[i].candidates[c].confidence,
                         (*expected)[i].candidates[c].confidence);
      }
    }
    if (obs::kEnabled) {
      // Every attempted write was refused and counted; nothing landed.
      EXPECT_GT(FaultRegistry::Global().FireCount("obs.eventlog.write"), 0u);
      EXPECT_GT(engine.event_log().write_failures(), 0u);
      EXPECT_EQ(engine.event_log().recorded(), 0u);
      EXPECT_TRUE(engine.event_log().Snapshot().empty());
    }
  }
  ExpectAcgConsistent(&engine);
  // Fault cleared: events flow again.
  const check::CheckAnnotation& again = workload_.annotations.front();
  ASSERT_TRUE(engine.InsertAnnotation(again.text, again.focal, "r").ok());
  if (obs::kEnabled) {
    EXPECT_GT(engine.event_log().recorded(), 0u);
    EXPECT_NE(engine.DumpEvents().find("\"op\":\"insert\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace nebula
