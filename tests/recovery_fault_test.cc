// Recovery fault tests: every durability fault point must degrade
// cleanly — a refused WAL append fails the operation and nothing else, a
// torn write poisons the writer until reopen, a failed snapshot leaves
// the WAL authoritative — and after any of them, reopening the directory
// must recover exactly the state the engine held when it was killed.
// Labeled "fault", "tsan" (pooled durable ingest), and "durability".

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/fault.h"
#include "common/fault_points.h"
#include "common/status.h"
#include "core/engine.h"
#include "testing/check_workload.h"
#include "testing/crash.h"
#include "testing/differential.h"

namespace nebula {
namespace {

namespace fs = std::filesystem;

class RecoveryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().Clear();
    dir_ = (fs::temp_directory_path() /
            ("nebula_recovery_fault_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    auto universe = check::BuildCheckUniverse(31);
    ASSERT_TRUE(universe.ok()) << universe.status().ToString();
    universe_ = std::move(universe).value();
    workload_ = check::GenerateCheckWorkload(31, *universe_);
    ASSERT_GE(workload_.annotations.size(), 3u);
  }
  void TearDown() override {
    FaultRegistry::Global().Clear();
    fs::remove_all(dir_);
  }

  NebulaConfig DurableConfig(size_t snapshot_every = 2) const {
    NebulaConfig config;
    config.trace_capacity = 0;
    config.event_capacity = 0;
    config.durability_dir = dir_;
    config.snapshot_every_n = snapshot_every;
    return config;
  }

  /// Normalized end-state records of an engine: ACG rebuilt from the
  /// store so the fingerprint is a pure function of attachments.
  static std::vector<std::string> StateLines(check::CheckUniverse* universe,
                                             NebulaEngine* engine) {
    engine->RebuildAcg();
    std::vector<std::string> lines;
    check::AppendStateLines(universe->store, *engine, &lines);
    return lines;
  }

  /// Reopens `dir_` in a fresh engine and expects its recovered state to
  /// equal `expected` (what the killed engine held in memory).
  void ExpectReopenRecovers(const std::vector<std::string>& expected,
                            const NebulaConfig& config) {
    auto universe = check::BuildCheckUniverse(31);
    ASSERT_TRUE(universe.ok());
    NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                        &(*universe)->meta, config);
    ASSERT_TRUE(engine.OpenDurability().ok());
    EXPECT_TRUE(engine.recovery_info().recovered);
    std::vector<std::string> lines;
    check::AppendStateLines((*universe)->store, engine, &lines);
    EXPECT_EQ(lines, expected);
  }

  std::unique_ptr<check::CheckUniverse> universe_;
  check::CheckWorkload workload_;
  std::string dir_;
};

TEST_F(RecoveryFaultTest, WalAppendFaultFailsOneOpAndEngineContinues) {
  const NebulaConfig config = DurableConfig();
  std::vector<std::string> killed_state;
  {
    NebulaEngine engine(&universe_->catalog, &universe_->store,
                        &universe_->meta, config);
    engine.RebuildAcg();
    ASSERT_TRUE(engine.OpenDurability().ok());
    size_t failures = 0;
    {
      // A clean append refusal: nothing reaches the log, nothing is
      // applied in memory, and the writer is NOT poisoned — the very
      // next operation must succeed.
      FaultSpec spec;
      spec.skip_calls = 2;
      spec.max_fires = 1;
      ScopedFault fault(kFaultDurabilityWalAppend, spec);
      for (const check::CheckAnnotation& a : workload_.annotations) {
        const auto report =
            engine.InsertAnnotation(a.text, a.focal, a.author);
        if (!report.ok()) ++failures;
      }
      EXPECT_EQ(FaultRegistry::Global().FireCount(kFaultDurabilityWalAppend),
                1u);
    }
    EXPECT_EQ(failures, 1u);
    // Fault cleared: the engine keeps accepting operations.
    const check::CheckAnnotation& again = workload_.annotations.front();
    ASSERT_TRUE(engine.InsertAnnotation(again.text, again.focal, "r").ok());
    killed_state = StateLines(universe_.get(), &engine);
  }
  ExpectReopenRecovers(killed_state, config);
}

TEST_F(RecoveryFaultTest, TornTailPoisonsWriterUntilReopenTruncates) {
  const NebulaConfig config = DurableConfig();
  std::vector<std::string> killed_state;
  {
    NebulaEngine engine(&universe_->catalog, &universe_->store,
                        &universe_->meta, config);
    engine.RebuildAcg();
    ASSERT_TRUE(engine.OpenDurability().ok());
    FaultSpec spec;
    spec.skip_calls = 3;
    spec.max_fires = 1;
    ScopedFault fault(kFaultDurabilityWalTornTail, spec);
    size_t failures = 0;
    for (const check::CheckAnnotation& a : workload_.annotations) {
      if (!engine.InsertAnnotation(a.text, a.focal, a.author).ok()) {
        ++failures;
      }
    }
    // The torn write fails its operation AND poisons the writer: every
    // subsequent operation fails too (the on-disk tail is garbage; more
    // appends would be lost to recovery's stop-at-first-invalid scan).
    EXPECT_GT(failures, 1u);
    const check::CheckAnnotation& again = workload_.annotations.front();
    EXPECT_FALSE(engine.InsertAnnotation(again.text, again.focal, "r").ok());
    killed_state = StateLines(universe_.get(), &engine);
  }
  // Reopen: the torn tail is truncated away and the recovered state is
  // exactly what the poisoned engine still held in memory.
  auto universe = check::BuildCheckUniverse(31);
  ASSERT_TRUE(universe.ok());
  NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                      &(*universe)->meta, config);
  ASSERT_TRUE(engine.OpenDurability().ok());
  EXPECT_TRUE(engine.recovery_info().recovered);
  EXPECT_TRUE(engine.recovery_info().tail_truncated);
  std::vector<std::string> lines;
  check::AppendStateLines((*universe)->store, engine, &lines);
  EXPECT_EQ(lines, killed_state);
  // And the reopened log accepts appends again.
  const check::CheckAnnotation& again = workload_.annotations.front();
  EXPECT_TRUE(engine.InsertAnnotation(again.text, again.focal, "r").ok());
}

TEST_F(RecoveryFaultTest, SnapshotFaultDegradesWalStaysAuthoritative) {
  const NebulaConfig config = DurableConfig(/*snapshot_every=*/1);
  std::vector<std::string> killed_state;
  {
    NebulaEngine engine(&universe_->catalog, &universe_->store,
                        &universe_->meta, config);
    engine.RebuildAcg();
    ASSERT_TRUE(engine.OpenDurability().ok());
    ScopedFault fault(kFaultDurabilitySnapshotWrite);
    for (const check::CheckAnnotation& a : workload_.annotations) {
      // Snapshot failure must never fail the triggering operation.
      const auto report = engine.InsertAnnotation(a.text, a.focal, a.author);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
    EXPECT_GT(
        FaultRegistry::Global().FireCount(kFaultDurabilitySnapshotWrite), 0u);
    ASSERT_NE(engine.durability(), nullptr);
    EXPECT_FALSE(engine.durability()->last_snapshot_status().ok());
    // Every cadence snapshot was refused: only the baseline (written at
    // open, before the fault armed) exists.
    EXPECT_EQ(engine.durability()->snapshots_written(), 1u);
    killed_state = StateLines(universe_.get(), &engine);
  }
  // The baseline snapshot plus the full (never truncated) WAL carry
  // everything.
  ExpectReopenRecovers(killed_state, config);
}

TEST_F(RecoveryFaultTest, PooledDurableBatchIngestRecoversExactly) {
  // Pool workers drive Stage 1/2 while the journaling chokepoint runs
  // stages 0/3 on the caller's thread — the interleaving a sanitizer
  // build race-checks. Results and recovery must match the sequential
  // contract exactly.
  NebulaConfig config = DurableConfig();
  config.num_threads = 3;
  std::vector<std::string> killed_state;
  {
    NebulaEngine engine(&universe_->catalog, &universe_->store,
                        &universe_->meta, config);
    engine.RebuildAcg();
    ASSERT_TRUE(engine.OpenDurability().ok());
    std::vector<AnnotationRequest> requests;
    for (const check::CheckAnnotation& a : workload_.annotations) {
      requests.push_back({a.text, a.focal, a.author});
    }
    const auto reports = engine.InsertAnnotations(requests);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    killed_state = StateLines(universe_.get(), &engine);
  }
  ExpectReopenRecovers(killed_state, config);
}

/// Harness-level closure: for every crash mode, RunCrashCase's
/// recovered-equals-committed-prefix oracle holds at several sampled
/// skips (and over both snapshot cadences for the fault-free modes).
TEST_F(RecoveryFaultTest, CrashCasesRecoverAtEveryFaultPoint) {
  check::CrashOptions options;
  options.snapshot_every = 2;
  for (const check::CrashMode mode :
       {check::CrashMode::kCleanShutdown, check::CrashMode::kWalAppend,
        check::CrashMode::kWalTornTail, check::CrashMode::kSnapshotWrite}) {
    for (const uint64_t skip : {uint64_t{0}, uint64_t{7}}) {
      check::CrashSpec spec;
      spec.mode = mode;
      spec.skip = skip;
      const auto verdict = check::RunCrashCase(workload_, spec, options);
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      EXPECT_FALSE(verdict->diverged)
          << check::CrashModeName(mode) << " skip=" << skip << ": "
          << verdict->detail;
    }
  }
}

}  // namespace
}  // namespace nebula
