// Tests for the annotated synchronization primitives (common/sync.h) plus
// regression coverage for the lock-discipline areas the static-analysis
// migration touched: Table's lazy index build, the TraceRecorder ring,
// and Histogram shard reads on the exporter path. Carries the ctest label
// "tsan" — run from a -DNEBULA_SANITIZE=thread build to race-check.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

// ---------------------------------------------------------------------------
// Mutex / MutexLock
// ---------------------------------------------------------------------------

TEST(MutexTest, MutexLockMutualExclusion) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  Mutex mutex;
  int64_t counter = 0;  // guarded by `mutex` (locals can't carry GUARDED_BY)

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mutex, &counter] {
      for (int i = 0; i < kIterations; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  MutexLock lock(mutex);
  EXPECT_EQ(counter, int64_t{kThreads} * kIterations);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mutex;
  bool locked_elsewhere = true;
  {
    MutexLock lock(mutex);
    // TryLock from the same thread on a held std::mutex is UB, so probe
    // from another thread.
    std::thread probe([&] { locked_elsewhere = mutex.TryLock(); });
    probe.join();
    EXPECT_FALSE(locked_elsewhere);
  }
  std::thread probe([&] {
    locked_elsewhere = mutex.TryLock();
    if (locked_elsewhere) mutex.Unlock();
  });
  probe.join();
  EXPECT_TRUE(locked_elsewhere);
}

TEST(MutexTest, AssertHeldCompilesAndRuns) {
  Mutex mutex;
  MutexLock lock(mutex);
  mutex.AssertHeld();  // documents the capability; must be a no-op at runtime
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;  // guarded by `mutex`
  int observed = 0;    // guarded by `mutex`

  std::thread consumer([&] {
    MutexLock lock(mutex);
    while (!ready) cv.Wait(mutex);
    observed = 42;
  });
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();

  MutexLock lock(mutex);
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 4;
  Mutex mutex;
  CondVar cv;
  bool go = false;  // guarded by `mutex`
  int woke = 0;     // guarded by `mutex`

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!go) cv.Wait(mutex);
      ++woke;
    });
  }
  {
    MutexLock lock(mutex);
    go = true;
  }
  cv.NotifyAll();
  for (auto& thread : waiters) thread.join();

  MutexLock lock(mutex);
  EXPECT_EQ(woke, kWaiters);
}

// ---------------------------------------------------------------------------
// SharedMutex / ReaderMutexLock / WriterMutexLock
// ---------------------------------------------------------------------------

TEST(SharedMutexTest, ReadersRunConcurrently) {
  SharedMutex mutex;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<bool> release{false};

  auto reader = [&] {
    ReaderMutexLock lock(mutex);
    const int inside = readers_inside.fetch_add(1) + 1;
    int prev = max_concurrent.load();
    while (prev < inside && !max_concurrent.compare_exchange_weak(prev, inside)) {
    }
    // Park until both readers have been seen inside, or time out (the
    // assertion below then reports the failure).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!release.load() && std::chrono::steady_clock::now() < deadline) {
      if (max_concurrent.load() >= 2) release.store(true);
      std::this_thread::yield();
    }
    readers_inside.fetch_sub(1);
  };
  std::thread r1(reader), r2(reader);
  r1.join();
  r2.join();
  EXPECT_GE(max_concurrent.load(), 2)
      << "two ReaderMutexLock holders never overlapped";
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mutex;
  bool acquired = true;
  {
    WriterMutexLock lock(mutex);
    std::thread probe([&] {
      acquired = mutex.TryLockShared();
      if (acquired) mutex.UnlockShared();
    });
    probe.join();
    EXPECT_FALSE(acquired) << "reader acquired while a writer held the lock";

    std::thread probe2([&] {
      acquired = mutex.TryLock();
      if (acquired) mutex.Unlock();
    });
    probe2.join();
    EXPECT_FALSE(acquired) << "writer acquired while a writer held the lock";
  }
  std::thread probe([&] {
    acquired = mutex.TryLockShared();
    if (acquired) mutex.UnlockShared();
  });
  probe.join();
  EXPECT_TRUE(acquired);
}

TEST(SharedMutexTest, WriterSeesAllReaderSideEffects) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  SharedMutex mutex;
  int64_t value = 0;  // guarded by `mutex`

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        WriterMutexLock lock(mutex);
        ++value;
      }
    });
  }
  for (auto& thread : writers) thread.join();
  ReaderMutexLock lock(mutex);
  EXPECT_EQ(value, int64_t{kThreads} * kIterations);
}

// ---------------------------------------------------------------------------
// Regression: Table's double-checked lazy index build (the canonical
// -Werror=thread-safety candidate). Readers racing to trigger the same
// build must serialize it and all observe the published index.
// ---------------------------------------------------------------------------

TEST(SyncRegressionTest, TableLazyIndexBuildRace) {
  Schema schema({{"gid", DataType::kString, /*unique=*/true},
                 {"name", DataType::kString},
                 {"length", DataType::kInt64}});
  Table table(0, "gene", schema);
  constexpr int kRows = 512;
  for (int r = 0; r < kRows; ++r) {
    auto inserted = table.Insert({Value(StrFormat("g%04d", r)),
                                  Value(StrFormat("name%d", r % 7)),
                                  Value(int64_t{r % 13})});
    ASSERT_TRUE(inserted.ok());
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &mismatches, t] {
      // Every thread races the lazy build of all three column indexes.
      if (table.DistinctCount(0) != kRows) mismatches.fetch_add(1);
      if (table.DistinctCount(1) != 7) mismatches.fetch_add(1);
      if (table.DistinctCount(2) != 13) mismatches.fetch_add(1);
      std::vector<Table::RowId> rows;
      switch (t % 3) {
        case 0:
          rows = table.Lookup(size_t{0}, Value("g0100"));
          break;
        case 1:
          rows = table.Lookup(size_t{1}, Value("name3"));
          break;
        default:
          rows = table.Lookup(size_t{2}, Value(int64_t{5}));
          break;
      }
      if (rows.empty()) mismatches.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Regression: TraceRecorder ring access under concurrent Record/Snapshot.
// ---------------------------------------------------------------------------

TEST(SyncRegressionTest, TraceRecorderConcurrentRecordAndSnapshot) {
  constexpr int kWriters = 4;
  constexpr int kTracesPerWriter = 500;
  constexpr size_t kCapacity = 64;
  obs::TraceRecorder recorder(kCapacity);

  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load()) {
      const auto traces = recorder.Snapshot();
      EXPECT_LE(traces.size(), kCapacity);
      EXPECT_LE(recorder.size(), kCapacity);
      (void)recorder.dropped();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kTracesPerWriter; ++i) {
        obs::Trace trace;
        trace.annotation = static_cast<uint64_t>(w) * kTracesPerWriter + i;
        recorder.Record(std::move(trace));
      }
    });
  }
  for (auto& thread : writers) thread.join();
  done.store(true);
  snapshotter.join();

  EXPECT_EQ(recorder.total_recorded(),
            uint64_t{kWriters} * kTracesPerWriter);
  EXPECT_EQ(recorder.size(), kCapacity);
  EXPECT_EQ(recorder.dropped(),
            uint64_t{kWriters} * kTracesPerWriter - kCapacity);
}

// ---------------------------------------------------------------------------
// Regression: Histogram shard reads on the exporter path while pool
// workers are still observing.
// ---------------------------------------------------------------------------

TEST(SyncRegressionTest, HistogramSnapshotDuringConcurrentObserve) {
  constexpr int kThreads = 8;
  constexpr int kObservations = 4000;
  obs::Histogram histogram;

  std::atomic<bool> done{false};
  std::thread exporter([&] {
    uint64_t last_count = 0;
    while (!done.load()) {
      const auto snap = histogram.GetSnapshot();
      // Counts fold across shards; they must never go backwards.
      EXPECT_GE(snap.count, last_count);
      last_count = snap.count;
      uint64_t bucket_total = 0;
      for (uint64_t b : snap.buckets) bucket_total += b;
      EXPECT_EQ(bucket_total, snap.count);
    }
  });

  std::vector<std::thread> observers;
  observers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    observers.emplace_back([&histogram] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (auto& thread : observers) thread.join();
  done.store(true);
  exporter.join();

  const auto snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kObservations);
}

}  // namespace
}  // namespace nebula
