#include <gtest/gtest.h>

#include "core/context_adjust.h"
#include "core/signature_maps.h"

namespace nebula {
namespace {

/// Builds a SignatureMap by hand: each entry is (word, mappings).
SignatureMap MakeMap(
    const std::vector<std::pair<std::string, std::vector<WordMapping>>>&
        words) {
  SignatureMap map;
  for (size_t i = 0; i < words.size(); ++i) {
    SigWord w;
    w.token.text = words[i].first;
    w.token.lower = words[i].first;
    w.token.position = i;
    w.mappings = words[i].second;
    map.words.push_back(std::move(w));
  }
  return map;
}

WordMapping TableM(const std::string& t, double w) {
  return {WordMapping::Kind::kTable, t, "", w};
}
WordMapping ColumnM(const std::string& t, const std::string& c, double w) {
  return {WordMapping::Kind::kColumn, t, c, w};
}
WordMapping ValueM(const std::string& t, const std::string& c, double w) {
  return {WordMapping::Kind::kValue, t, c, w};
}

TEST(FindMatchesTest, Type1RequiresAllThreeShapes) {
  const SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"id", {ColumnM("gene", "gid", 0.9)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  const auto matches = FindMatchesOfType(map, 2, 0, 4, MatchType::kType1);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].table_pos, 0u);
  EXPECT_EQ(matches[0].column_pos, 1u);
  EXPECT_EQ(matches[0].value_pos, 2u);
}

TEST(FindMatchesTest, Type1RequiresConsistency) {
  // Column belongs to a different table: no Type-1.
  const SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"pid", {ColumnM("protein", "pid", 0.9)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  EXPECT_TRUE(FindMatchesOfType(map, 2, 0, 4, MatchType::kType1).empty());
  // But Type-2 (gene table + gene value) still forms.
  EXPECT_EQ(FindMatchesOfType(map, 2, 0, 4, MatchType::kType2).size(), 1u);
}

TEST(FindMatchesTest, Type2TableValue) {
  const SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"yaaB", {ValueM("gene", "name", 0.9)}},
  });
  const auto matches = FindMatchesOfType(map, 1, 0, 4, MatchType::kType2);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].type, MatchType::kType2);
  // Symmetric: from the table word's perspective too.
  EXPECT_EQ(FindMatchesOfType(map, 0, 0, 4, MatchType::kType2).size(), 1u);
}

TEST(FindMatchesTest, Type3ColumnValue) {
  const SignatureMap map = MakeMap({
      {"name", {ColumnM("gene", "name", 1.0)}},
      {"grpC", {ValueM("gene", "name", 0.9)}},
  });
  EXPECT_EQ(FindMatchesOfType(map, 1, 0, 4, MatchType::kType3).size(), 1u);
  // Column/value column mismatch: no match.
  const SignatureMap bad = MakeMap({
      {"name", {ColumnM("gene", "name", 1.0)}},
      {"JW0013", {ValueM("gene", "gid", 0.9)}},
  });
  EXPECT_TRUE(FindMatchesOfType(bad, 1, 0, 4, MatchType::kType3).empty());
}

TEST(FindMatchesTest, InfluenceRangeLimitsSearch) {
  const SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"f1", {}},
      {"f2", {}},
      {"f3", {}},
      {"f4", {}},
      {"f5", {}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  // alpha=4: "gene" at distance 6 is out of range.
  EXPECT_TRUE(FindMatchesOfType(map, 6, 0, 4, MatchType::kType2).empty());
  // alpha=6 reaches it.
  EXPECT_EQ(FindMatchesOfType(map, 6, 0, 6, MatchType::kType2).size(), 1u);
}

TEST(FindMatchesTest, DistinctWordsRequiredForType1) {
  // One word carrying both table and column mappings cannot satisfy two
  // shapes of the same Type-1 match.
  const SignatureMap map = MakeMap({
      {"genegid", {TableM("gene", 1.0), ColumnM("gene", "gid", 0.9)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  EXPECT_TRUE(FindMatchesOfType(map, 1, 0, 4, MatchType::kType1).empty());
  EXPECT_EQ(FindMatchesOfType(map, 1, 0, 4, MatchType::kType2).size(), 1u);
}

TEST(FindBestMatchTest, PrefersStrongerType) {
  const SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"id", {ColumnM("gene", "gid", 0.9)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  const ContextMatch best = FindBestMatch(map, 2, 0, 4);
  EXPECT_EQ(best.type, MatchType::kType1);
}

TEST(FindBestMatchTest, FallsBackToWeakerTypes) {
  const SignatureMap type2_only = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  EXPECT_EQ(FindBestMatch(type2_only, 1, 0, 4).type, MatchType::kType2);

  const SignatureMap type3_only = MakeMap({
      {"gid", {ColumnM("gene", "gid", 0.9)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  EXPECT_EQ(FindBestMatch(type3_only, 1, 0, 4).type, MatchType::kType3);

  const SignatureMap nothing = MakeMap({
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  EXPECT_EQ(FindBestMatch(nothing, 0, 0, 4).type, MatchType::kNone);
}

TEST(FindBestMatchTest, PicksHighestCombinedWeightAmongSameType) {
  const SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 0.5)}},
      {"locus", {TableM("gene", 1.0)}},
      {"JW0018", {ValueM("gene", "gid", 0.9)}},
  });
  const ContextMatch best = FindBestMatch(map, 2, 0, 4);
  EXPECT_EQ(best.type, MatchType::kType2);
  EXPECT_EQ(best.table_pos, 1u);  // the heavier table word
}

TEST(ContextAdjustTest, Type1RewardsAllMembers) {
  SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"id", {ColumnM("gene", "gid", 0.8)}},
      {"JW0018", {ValueM("gene", "gid", 0.8)}},
  });
  ContextAdjustParams params;
  params.beta1 = 0.10;
  ContextBasedAdjustment(&map, params);
  // Each mapping found one Type-1 match: weight *= 1.10 (capped at 1).
  EXPECT_DOUBLE_EQ(map.words[0].mappings[0].weight, 1.0);  // capped
  EXPECT_NEAR(map.words[1].mappings[0].weight, 0.88, 1e-9);
  EXPECT_NEAR(map.words[2].mappings[0].weight, 0.88, 1e-9);
}

TEST(ContextAdjustTest, ExclusiveCascadeType1SuppressesType2) {
  SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"id", {ColumnM("gene", "gid", 0.8)}},
      {"JW0018", {ValueM("gene", "gid", 0.5)}},
  });
  ContextAdjustParams params;
  params.beta1 = 0.10;
  params.beta2 = 0.50;  // would be larger if (wrongly) applied
  ContextBasedAdjustment(&map, params);
  // The value word has a Type-1 match, so only beta1 applies.
  EXPECT_NEAR(map.words[2].mappings[0].weight, 0.55, 1e-9);
}

TEST(ContextAdjustTest, Type2AndType3Rewards) {
  SignatureMap type2 = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"JW0018", {ValueM("gene", "gid", 0.5)}},
  });
  ContextAdjustParams params;
  params.beta2 = 0.20;
  params.beta3 = 0.10;
  ContextBasedAdjustment(&type2, params);
  EXPECT_NEAR(type2.words[1].mappings[0].weight, 0.6, 1e-9);

  SignatureMap type3 = MakeMap({
      {"gid", {ColumnM("gene", "gid", 0.9)}},
      {"JW0018", {ValueM("gene", "gid", 0.5)}},
  });
  ContextBasedAdjustment(&type3, params);
  EXPECT_NEAR(type3.words[1].mappings[0].weight, 0.55, 1e-9);
}

TEST(ContextAdjustTest, MultipleMatchesCountedUpToCap) {
  SignatureMap map = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"locus", {TableM("gene", 1.0)}},
      {"JW0018", {ValueM("gene", "gid", 0.5)}},
  });
  ContextAdjustParams params;
  params.beta2 = 0.10;
  params.max_matches_counted = 2;
  ContextBasedAdjustment(&map, params);
  // Two Type-2 matches x 10% each: 0.5 * 1.2.
  EXPECT_NEAR(map.words[2].mappings[0].weight, 0.6, 1e-9);

  SignatureMap capped = MakeMap({
      {"gene", {TableM("gene", 1.0)}},
      {"locus", {TableM("gene", 1.0)}},
      {"cistron", {TableM("gene", 1.0)}},
      {"JW0018", {ValueM("gene", "gid", 0.5)}},
  });
  params.max_matches_counted = 1;
  ContextBasedAdjustment(&capped, params);
  EXPECT_NEAR(capped.words[3].mappings[0].weight, 0.55, 1e-9);
}

TEST(ContextAdjustTest, IsolatedWordsUnchanged) {
  SignatureMap map = MakeMap({
      {"JW0018", {ValueM("gene", "gid", 0.7)}},
      {"banana", {}},
  });
  ContextBasedAdjustment(&map, ContextAdjustParams{});
  EXPECT_DOUBLE_EQ(map.words[0].mappings[0].weight, 0.7);
}

TEST(ContextAdjustTest, AdjustmentUsesSnapshotWeights) {
  // Rewards must be computed from pre-adjustment weights: processing
  // order must not change the result. Two value words sharing one table
  // word get identical relative boosts.
  SignatureMap map = MakeMap({
      {"JW0011", {ValueM("gene", "gid", 0.5)}},
      {"gene", {TableM("gene", 1.0)}},
      {"JW0012", {ValueM("gene", "gid", 0.5)}},
  });
  ContextAdjustParams params;
  params.beta2 = 0.20;
  ContextBasedAdjustment(&map, params);
  EXPECT_DOUBLE_EQ(map.words[0].mappings[0].weight,
                   map.words[2].mappings[0].weight);
}

}  // namespace
}  // namespace nebula
