/// Wide-event layer tests: the JSON record shape, the EventLog's
/// sampling / slow-query / ring / sink semantics, context install and
/// pool propagation, and the engine-level integration (an insert emits
/// one wide event carrying its cache path and verification outcome, a
/// shared-group execution emits a child event linked via parent_op).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "testing/check_workload.h"

namespace nebula {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// WideEventToJson
// ---------------------------------------------------------------------

TEST(WideEventJsonTest, FixedFieldOrderAndOptionalFields) {
  WideEvent event;
  event.op = "insert";
  event.op_id = 7;
  event.annotation = 42;
  event.thread = 3;
  event.duration_us = 120;
  event.store_us = 10;
  event.generation_us = 30;
  event.search_us = 70;
  event.verification_us = 10;
  event.plan_cache_hits = 2;
  event.rows_examined = 55;
  event.verification = "accepted=1,rejected=0,pending=2";
  event.slow = true;
  const std::string json = WideEventToJson(event);
  // Leading fields in fixed order.
  EXPECT_EQ(json.find("{\"op\":\"insert\",\"op_id\":7,\"annotation\":42,"
                      "\"thread\":3,\"duration_us\":120"),
            0u)
      << json;
  EXPECT_NE(json.find("\"plan_cache_hits\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rows_examined\":55"), std::string::npos);
  EXPECT_NE(json.find("\"verification\":\"accepted=1,rejected=0,pending=2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"slow\":true"), std::string::npos);
  // Top-level op: no parent_op field at all.
  EXPECT_EQ(json.find("parent_op"), std::string::npos);
}

TEST(WideEventJsonTest, ChildEventCarriesParentOp) {
  WideEvent event;
  event.op = "shared_exec";
  event.op_id = 8;
  event.parent_op = 7;
  const std::string json = WideEventToJson(event);
  EXPECT_NE(json.find("\"parent_op\":7"), std::string::npos);
  // No annotation and no verification outcome on a child event.
  EXPECT_EQ(json.find("annotation"), std::string::npos);
  EXPECT_EQ(json.find("\"verification\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------

WideEvent MakeEvent(const char* op, uint64_t duration_us = 0) {
  WideEvent event;
  event.op = op;
  event.duration_us = duration_us;
  return event;
}

TEST(EventLogTest, RingKeepsNewestAndCountsEvictions) {
  EventLog log({/*capacity=*/3, 1.0, 0, 0});
  for (int i = 0; i < 5; ++i) {
    WideEvent event = MakeEvent("search");
    event.op_id = log.NextOpId();
    log.Record(event);
  }
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_EQ(log.ring_dropped(), 2u);
  const std::vector<std::string> lines = log.Snapshot();
  ASSERT_EQ(lines.size(), 3u);
  // Oldest first: op_ids 3, 4, 5 survive.
  EXPECT_NE(lines[0].find("\"op_id\":3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"op_id\":5"), std::string::npos);
  EXPECT_EQ(log.DumpJsonLines(),
            lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n");
}

TEST(EventLogTest, SamplingIsSeedDeterministic) {
  const EventLog::Options options{/*capacity=*/256, /*sample_rate=*/0.4,
                                  /*slow_us=*/0, /*seed=*/99};
  EventLog a(options);
  EventLog b(options);
  for (int i = 0; i < 200; ++i) {
    a.Record(MakeEvent("search", i));
    b.Record(MakeEvent("search", i));
  }
  EXPECT_EQ(a.recorded() + a.sampled_out(), 200u);
  EXPECT_GT(a.sampled_out(), 0u);
  EXPECT_GT(a.recorded(), 0u);
  // Same seed, same arrival order: the kept set is identical.
  EXPECT_EQ(a.Snapshot(), b.Snapshot());
  EXPECT_EQ(a.recorded(), b.recorded());
}

TEST(EventLogTest, SlowEventsBypassSampling) {
  // sample_rate 0 drops everything except events at or over slow_us.
  EventLog log({/*capacity=*/256, /*sample_rate=*/0.0, /*slow_us=*/100, 0});
  log.Record(MakeEvent("search", 99));
  log.Record(MakeEvent("search", 100));
  log.Record(MakeEvent("search", 5000));
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.sampled_out(), 1u);
  for (const std::string& line : log.Snapshot()) {
    EXPECT_EQ(line.find("\"duration_us\":99,"), std::string::npos) << line;
  }
}

TEST(EventLogTest, SinkReceivesEveryKeptLine) {
  EventLog log({/*capacity=*/256, 1.0, 0, 0});
  std::vector<std::string> seen;
  log.SetSink([&seen](const std::string& line) {
    seen.push_back(line);
    return true;
  });
  log.Record(MakeEvent("insert"));
  log.Record(MakeEvent("search"));
  EXPECT_EQ(seen, log.Snapshot());
}

TEST(EventLogTest, FailingSinkDropsEventAndCounts) {
  EventLog log({/*capacity=*/256, 1.0, 0, 0});
  log.SetSink([](const std::string&) { return false; });
  log.Record(MakeEvent("insert"));
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.write_failures(), 1u);
  EXPECT_TRUE(log.Snapshot().empty());
  // Clearing the sink restores normal recording.
  log.SetSink(nullptr);
  log.Record(MakeEvent("insert"));
  EXPECT_EQ(log.recorded(), 1u);
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

// ---------------------------------------------------------------------
// Context install + pool propagation
// ---------------------------------------------------------------------

TEST(EventContextTest, ScopedInstallAndRestore) {
  EXPECT_EQ(CurrentEventContext(), nullptr);
  EventLog log({/*capacity=*/4, 1.0, 0, 0});
  {
    ScopedEventContext outer(&log);
    EXPECT_EQ(CurrentEventContext(), outer.context());
    EXPECT_EQ(outer.op_id(), 1u);
    {
      ScopedEventContext inner(&log);
      EXPECT_EQ(CurrentEventContext(), inner.context());
      EXPECT_EQ(inner.op_id(), 2u);
    }
    EXPECT_EQ(CurrentEventContext(), outer.context());
  }
  EXPECT_EQ(CurrentEventContext(), nullptr);
}

TEST(EventContextTest, FillEventCopiesCounters) {
  EventContext context;
  context.plan_cache_hits.store(3);
  context.result_cache_misses.store(2);
  context.rows_examined.store(77);
  context.sql_shared.store(5);
  WideEvent event;
  FillEventFromContext(&event, context);
  EXPECT_EQ(event.plan_cache_hits, 3u);
  EXPECT_EQ(event.result_cache_misses, 2u);
  EXPECT_EQ(event.rows_examined, 77u);
  EXPECT_EQ(event.sql_shared, 5u);
}

TEST(EventContextTest, PooledTasksAttributeToSubmitterContext) {
  if (!kEnabled) GTEST_SKIP() << "hooks compiled out under NEBULA_OBS=OFF";
  EventLog log({/*capacity=*/4, 1.0, 0, 0});
  ThreadPool pool(4);
  {
    ScopedEventContext scope(&log);
    std::vector<std::future<void>> done;
    for (int t = 0; t < 32; ++t) {
      done.push_back(pool.Submit([] {
        // Worker threads must see the submitting operation's context.
        EventContext* context = CurrentEventContext();
        ASSERT_NE(context, nullptr);
        context->rows_examined.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : done) f.get();
    EXPECT_EQ(scope.context()->rows_examined.load(), 32u);
  }
  // A task submitted outside any scope carries no context — a worker's
  // previously swapped-in pointer must not leak into later tasks.
  pool.Submit([] { EXPECT_EQ(CurrentEventContext(), nullptr); }).get();
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

TEST(EngineEventTest, InsertEmitsWideEventWithAttribution) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  auto universe = check::BuildCheckUniverse(11);
  ASSERT_TRUE(universe.ok()) << universe.status().ToString();
  const check::CheckWorkload workload =
      check::GenerateCheckWorkload(11, **universe);
  ASSERT_FALSE(workload.annotations.empty());

  NebulaConfig config;
  config.num_threads = 2;
  config.identify.shared_execution = true;
  NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                      &(*universe)->meta, config);
  engine.RebuildAcg();

  for (const check::CheckAnnotation& a : workload.annotations) {
    auto report = engine.InsertAnnotation(a.text, a.focal, a.author);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  const std::vector<std::string> lines = engine.event_log().Snapshot();
  ASSERT_FALSE(lines.empty());
  size_t inserts = 0, children = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"op\":\"insert\"") != std::string::npos) {
      ++inserts;
      EXPECT_NE(line.find("\"annotation\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"verification\":"), std::string::npos) << line;
    }
    if (line.find("\"op\":\"shared_exec\"") != std::string::npos) {
      ++children;
      EXPECT_NE(line.find("\"parent_op\":"), std::string::npos) << line;
    }
  }
  EXPECT_EQ(inserts, workload.annotations.size());
  EXPECT_GT(children, 0u);
}

TEST(EngineEventTest, DiscoverEmitsSearchEvent) {
  if (!kEnabled) GTEST_SKIP() << "instrumentation compiled out";
  auto universe = check::BuildCheckUniverse(12);
  ASSERT_TRUE(universe.ok()) << universe.status().ToString();
  const check::CheckWorkload workload =
      check::GenerateCheckWorkload(12, **universe);
  ASSERT_FALSE(workload.annotations.empty());

  NebulaEngine engine(&(*universe)->catalog, &(*universe)->store,
                      &(*universe)->meta, {});
  engine.RebuildAcg();
  const check::CheckAnnotation& a = workload.annotations.front();
  auto inserted = engine.InsertAnnotation(a.text, a.focal, a.author);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  auto discovered = engine.Discover(inserted->annotation, a.focal);
  ASSERT_TRUE(discovered.ok()) << discovered.status().ToString();

  const std::string dump = engine.DumpEvents();
  EXPECT_NE(dump.find("\"op\":\"search\""), std::string::npos) << dump;
  // Searches skip verification: no outcome string on the search record.
  const size_t search_at = dump.find("\"op\":\"search\"");
  const size_t line_end = dump.find('\n', search_at);
  const std::string search_line =
      dump.substr(search_at, line_end - search_at);
  EXPECT_EQ(search_line.find("\"verification\":\""), std::string::npos)
      << search_line;
}

}  // namespace
}  // namespace obs
}  // namespace nebula
