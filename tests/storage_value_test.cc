#include <gtest/gtest.h>

#include "storage/value.h"

namespace nebula {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(1.0).is_double());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{-3}).AsInt(), -3);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value(std::string("grpC")).AsString(), "grpC");
}

TEST(ValueTest, NumericValueWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).NumericValue(), 7.0);
  EXPECT_DOUBLE_EQ(Value(0.5).NumericValue(), 0.5);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("JW0014").ToString(), "JW0014");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, CrossTypeNeverEqual) {
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("gene").Hash(), Value("gene").Hash());
  EXPECT_EQ(Value(int64_t{9}).Hash(), Value(int64_t{9}).Hash());
  EXPECT_NE(Value("gene").Hash(), Value("gen").Hash());
  // Cross-type values with the same digits must not collide.
  EXPECT_NE(Value(int64_t{1}).Hash(), Value("1").Hash());
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
  EXPECT_EQ(Value(-0.0), Value(0.0));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, OrderingAcrossTypesIsByTypeIndex) {
  // Deterministic, int < double < string.
  EXPECT_LT(Value(int64_t{99}), Value(0.0));
  EXPECT_LT(Value(5.0), Value("a"));
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
}

}  // namespace
}  // namespace nebula
