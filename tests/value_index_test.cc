// Unified inverted value index: tokenizer contract, posting-list
// maintenance under insert interleavings (incremental == from-scratch
// rebuild), and the QueryExecutor fast path's bit-identical results and
// replayed ExecStats against the legacy scan/text-index evaluation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"
#include "storage/value_index.h"

namespace nebula {
namespace {

Schema TwoTextSchema() {
  return Schema({{"id", DataType::kString, true},
                 {"title", DataType::kString, false},
                 {"abstract", DataType::kString, false},
                 {"score", DataType::kInt64, false}});
}

TEST(TokenizeForIndexTest, LowercasedAlnumRuns) {
  EXPECT_EQ(TokenizeForIndex("Gene JW0014, kinase!"),
            (std::vector<std::string>{"gene", "jw0014", "kinase"}));
  EXPECT_TRUE(TokenizeForIndex("...  \t").empty());
  EXPECT_EQ(TokenizeForIndex("a1b2"), (std::vector<std::string>{"a1b2"}));
}

TEST(ValueIndexTest, AddRowIndexesEveryStringColumn) {
  const Schema schema = TwoTextSchema();
  ValueIndex index;
  index.AddRow(schema, {Value("P1"), Value("gene kinase"),
                        Value("the kinase pathway"), Value(int64_t{7})},
               0);
  index.AddRow(schema, {Value("P2"), Value("unrelated"), Value("gene Gene"),
                        Value(int64_t{8})},
               1);

  const auto* title_kinase = index.Lookup("kinase", 1);
  ASSERT_NE(title_kinase, nullptr);
  EXPECT_EQ(*title_kinase, (std::vector<ValueIndex::RowId>{0}));
  const auto* abs_kinase = index.Lookup("kinase", 2);
  ASSERT_NE(abs_kinase, nullptr);
  EXPECT_EQ(*abs_kinase, (std::vector<ValueIndex::RowId>{0}));
  // Duplicate tokens within one cell dedup to one posting.
  const auto* abs_gene = index.Lookup("gene", 2);
  ASSERT_NE(abs_gene, nullptr);
  EXPECT_EQ(*abs_gene, (std::vector<ValueIndex::RowId>{1}));
  // Int columns are never indexed; absent (token, column) pairs are null.
  EXPECT_EQ(index.Lookup("7", 3), nullptr);
  EXPECT_EQ(index.Lookup("gene", 0), nullptr);
  EXPECT_EQ(index.Lookup("nosuchtoken", 1), nullptr);
  EXPECT_GT(index.num_tokens(), 0u);
  EXPECT_GT(index.num_postings(), 0u);
}

// ---- Property: incremental maintenance == from-scratch rebuild --------
// Build the table's index at a random point of the insert stream; every
// later Insert maintains it incrementally. The final index must equal a
// from-scratch rebuild over the full table, for any interleaving.

class IndexRebuildEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexRebuildEquivalence, CanonicalDumpsMatch) {
  Rng rng(GetParam());
  static const char* kWords[] = {"gene",   "protein", "kinase", "jw0014",
                                 "binds",  "pathway", "alpha",  "beta",
                                 "mutant", "express"};
  auto random_text = [&] {
    std::string text;
    const size_t n = 1 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      if (!text.empty()) text += ' ';
      text += kWords[rng.Uniform(std::size(kWords))];
    }
    return text;
  };

  Table table(0, "publication", TwoTextSchema());
  const size_t total_rows = 20 + rng.Uniform(40);
  const size_t build_at = rng.Uniform(total_rows);
  for (size_t r = 0; r < total_rows; ++r) {
    if (r == build_at) {
      // Lazy build at an arbitrary stream position; rows after this are
      // folded in incrementally by Insert.
      ASSERT_NE(table.TryValueIndex(), nullptr);
    }
    ASSERT_TRUE(table
                    .Insert({Value("P" + std::to_string(r)),
                             Value(random_text()), Value(random_text()),
                             Value(static_cast<int64_t>(r))})
                    .ok());
  }

  const ValueIndex* incremental = table.TryValueIndex();
  ASSERT_NE(incremental, nullptr);
  ValueIndex from_scratch;
  for (Table::RowId r = 0; r < table.num_rows(); ++r) {
    from_scratch.AddRow(table.schema(), table.GetRow(r), r);
  }
  EXPECT_EQ(incremental->CanonicalDump(), from_scratch.CanonicalDump());
  EXPECT_EQ(incremental->num_tokens(), from_scratch.num_tokens());
  EXPECT_EQ(incremental->num_postings(), from_scratch.num_postings());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexRebuildEquivalence,
                         ::testing::Values(1u, 2u, 7u, 42u, 1234u, 99999u));

// ---- Property: fast path == legacy path (rows AND ExecStats) ----------

class IndexVsScanExecution : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexVsScanExecution, IdenticalRowsAndReplayedStats) {
  Rng rng(GetParam());
  static const char* kWords[] = {"gene", "protein", "kinase", "jw0014",
                                 "binds", "pathway"};
  Catalog catalog;
  Table* table = *catalog.CreateTable("publication", TwoTextSchema());
  const size_t rows = 30 + rng.Uniform(30);
  for (size_t r = 0; r < rows; ++r) {
    std::string title = kWords[rng.Uniform(std::size(kWords))];
    title += ' ';
    title += kWords[rng.Uniform(std::size(kWords))];
    ASSERT_TRUE(table
                    ->Insert({Value("P" + std::to_string(r)), Value(title),
                              Value(std::string(kWords[rng.Uniform(
                                  std::size(kWords))])),
                              Value(static_cast<int64_t>(r % 10))})
                    .ok());
  }
  // Half the seeds also get a text index on title, covering the replayed
  // text-index cost model; the other half replay the scan cost model.
  const bool text_indexed = (GetParam() & 1) != 0;
  if (text_indexed) ASSERT_TRUE(table->BuildTextIndex(1).ok());

  for (int round = 0; round < 20; ++round) {
    SelectQuery query;
    query.table = "publication";
    query.predicates.push_back({"title", CompareOp::kContainsToken,
                                Value(std::string(kWords[rng.Uniform(
                                    std::size(kWords))]))});
    if (rng.Bernoulli(0.5)) {
      query.predicates.push_back({"abstract", CompareOp::kContainsToken,
                                  Value(std::string(kWords[rng.Uniform(
                                      std::size(kWords))]))});
    }
    if (rng.Bernoulli(0.5)) {
      // Non-token residue: verified per candidate on both paths.
      query.predicates.push_back({"score", CompareOp::kGe,
                                  Value(static_cast<int64_t>(rng.Uniform(10)))});
    }

    QueryExecutor fast(&catalog);
    QueryExecutor legacy(&catalog);
    legacy.set_use_value_index(false);
    const auto a = fast.Execute(query);
    const auto b = legacy.Execute(query);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << query.ToSqlString();
    EXPECT_EQ(fast.stats().rows_examined, legacy.stats().rows_examined);
    EXPECT_EQ(fast.stats().index_lookups, legacy.stats().index_lookups);
    EXPECT_EQ(fast.stats().matches, legacy.stats().matches);
    EXPECT_EQ(fast.path_stats().index_path, 1u);
    EXPECT_EQ(fast.path_stats().legacy_path, 0u);
    EXPECT_EQ(legacy.path_stats().index_path, 0u);
    EXPECT_EQ(legacy.path_stats().legacy_path, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexVsScanExecution,
                         ::testing::Values(1u, 2u, 3u, 4u, 50u, 51u));

TEST(IndexVsScanExecution, EqualityPredicatesStayOnLegacyPath) {
  Catalog catalog;
  Table* table = *catalog.CreateTable("publication", TwoTextSchema());
  ASSERT_TRUE(table
                  ->Insert({Value("P0"), Value("gene kinase"),
                            Value("pathway"), Value(int64_t{1})})
                  .ok());
  SelectQuery query;
  query.table = "publication";
  query.predicates.push_back({"id", CompareOp::kEq, Value("P0")});
  query.predicates.push_back(
      {"title", CompareOp::kContainsToken, Value("gene")});
  QueryExecutor executor(&catalog);
  const auto result = executor.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  // Hash-index-eligible queries keep their historical driver.
  EXPECT_EQ(executor.path_stats().index_path, 0u);
  EXPECT_EQ(executor.path_stats().legacy_path, 1u);
}

}  // namespace
}  // namespace nebula
