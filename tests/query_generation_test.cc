#include <gtest/gtest.h>

#include <algorithm>

#include "core/query_generation.h"
#include "keyword/query_types.h"
#include "meta/nebula_meta.h"

namespace nebula {
namespace {

class QueryGenerationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(
        meta_.AddConcept("Protein", "protein", {{"pid"}, {"pname", "ptype"}})
            .ok());
    meta_.AddColumnAlias("gene", "gid", "id");
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("protein", "pid", "P[0-9]{5}").ok());
    ASSERT_TRUE(
        meta_.SetColumnOntology("protein", "ptype", {"kinase", "receptor"})
            .ok());
  }

  std::vector<KeywordQuery> Generate(const std::string& text,
                                     double epsilon = 0.6) {
    QueryGenerationParams params;
    params.epsilon = epsilon;
    QueryGenerator gen(&meta_, params);
    return gen.Generate(text).queries;
  }

  static bool HasQuery(const std::vector<KeywordQuery>& queries,
                       std::vector<std::string> keywords) {
    std::sort(keywords.begin(), keywords.end());
    for (const auto& q : queries) {
      std::vector<std::string> sorted = q.keywords;
      std::sort(sorted.begin(), sorted.end());
      if (sorted == keywords) return true;
    }
    return false;
  }

  NebulaMeta meta_;
};

TEST_F(QueryGenerationTest, AliceCommentProducesBothReferences) {
  // The running example of the paper (Figure 1).
  const auto queries = Generate(
      "From the exp, it seems this gene is correlated to JW0014 of grpC");
  EXPECT_TRUE(HasQuery(queries, {"gene", "JW0014"}));
  EXPECT_TRUE(HasQuery(queries, {"gene", "grpC"}));
  EXPECT_EQ(queries.size(), 2u);
}

TEST_F(QueryGenerationTest, Type1MatchYieldsThreeKeywordQuery) {
  const auto queries = Generate("measured gene id JW0018 today");
  ASSERT_FALSE(queries.empty());
  EXPECT_TRUE(HasQuery(queries, {"gene", "id", "JW0018"}));
}

TEST_F(QueryGenerationTest, Type2MatchYieldsTwoKeywordQuery) {
  const auto queries = Generate("the gene yaaB was elevated");
  EXPECT_TRUE(HasQuery(queries, {"gene", "yaaB"}));
}

TEST_F(QueryGenerationTest, BackwardSearchFindsEarlierConcept) {
  // "grpC" is far beyond the influence range (alpha=4) of "gene"; the
  // backward special case must still pair them.
  const auto queries = Generate(
      "gene JW0014 shows increased expression under heat stress conditions "
      "and further analysis suggests the involvement of grpC as well");
  EXPECT_TRUE(HasQuery(queries, {"gene", "JW0014"}));
  EXPECT_TRUE(HasQuery(queries, {"gene", "grpC"}));
}

TEST_F(QueryGenerationTest, BackwardSearchDisabledDropsOrphanValues) {
  QueryGenerationParams params;
  params.epsilon = 0.6;
  params.backward_search_limit = 0;
  QueryGenerator gen(&meta_, params);
  const auto queries = gen.Generate(
      "gene JW0014 shows increased expression under heat stress conditions "
      "and further analysis suggests the involvement of grpC as well")
                          .queries;
  EXPECT_TRUE(HasQuery(queries, {"gene", "JW0014"}));
  EXPECT_FALSE(HasQuery(queries, {"gene", "grpC"}));
}

TEST_F(QueryGenerationTest, OrphanValueWithNoConceptAnywhereIgnored) {
  const auto queries = Generate("observed JW0014 readings");
  EXPECT_TRUE(queries.empty());
}

TEST_F(QueryGenerationTest, ConceptWordAloneProducesNoQuery) {
  EXPECT_TRUE(Generate("the gene was interesting").empty());
  EXPECT_TRUE(Generate("protein analysis methods").empty());
}

TEST_F(QueryGenerationTest, DuplicateReferencesDeduplicated) {
  const auto queries =
      Generate("gene JW0014 and again gene JW0014 measured twice");
  size_t count = 0;
  for (const auto& q : queries) {
    if (HasQuery({q}, {"gene", "JW0014"})) ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(QueryGenerationTest, WeightsNormalizedToUnitInterval) {
  const auto queries = Generate(
      "gene id JW0018 and also gene yaaB plus protein P00042 kinase");
  ASSERT_FALSE(queries.empty());
  double max_w = 0.0;
  for (const auto& q : queries) {
    EXPECT_GT(q.weight, 0.0);
    EXPECT_LE(q.weight, 1.0);
    max_w = std::max(max_w, q.weight);
  }
  EXPECT_DOUBLE_EQ(max_w, 1.0);
}

TEST_F(QueryGenerationTest, StrongerMatchTypeGetsHigherWeight) {
  const auto queries =
      Generate("first gene id JW0018 then another gene yaaB later");
  double type1_w = -1, type2_w = -1;
  for (const auto& q : queries) {
    if (q.keywords.size() == 3) type1_w = q.weight;
    if (q.keywords.size() == 2) type2_w = q.weight;
  }
  ASSERT_GE(type1_w, 0.0);
  ASSERT_GE(type2_w, 0.0);
  EXPECT_GT(type1_w, type2_w);
}

TEST_F(QueryGenerationTest, EpsilonControlsQueryCount) {
  const std::string text =
      "gene JW0014 expression with locus grpC analysis near protein P00042";
  const auto q04 = Generate(text, 0.4);
  const auto q06 = Generate(text, 0.6);
  const auto q08 = Generate(text, 0.8);
  EXPECT_GE(q04.size(), q06.size());
  EXPECT_GE(q06.size(), q08.size());
}

TEST_F(QueryGenerationTest, TimingPhasesPopulated) {
  QueryGenerator gen(&meta_);
  const auto result = gen.Generate(
      "gene JW0014 correlated with gene grpC in repeated measurements");
  EXPECT_GT(result.timing.total_us(), 0u);
  EXPECT_FALSE(result.queries.empty());
  EXPECT_FALSE(result.context_map.words.empty());
}

TEST_F(QueryGenerationTest, LabelsMatchKeywords) {
  const auto queries = Generate("gene JW0014 here");
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].label, queries[0].ToString());
}

TEST_F(QueryGenerationTest, EmptyAnnotation) {
  EXPECT_TRUE(Generate("").empty());
  EXPECT_TRUE(Generate("the of and is").empty());
}

TEST_F(QueryGenerationTest, ProteinComboReferencesGenerateQueries) {
  const auto queries = Generate("the protein P00042 kinase assay");
  // P00042 pairs with "protein" (Type-2); "kinase" is both a hyponym
  // concept and a ptype value - at minimum the pid query must exist.
  EXPECT_TRUE(HasQuery(queries, {"protein", "P00042"}) ||
              HasQuery(queries, {"protein", "P00042", "kinase"}));
}

}  // namespace
}  // namespace nebula
