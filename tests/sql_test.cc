#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "common/status.h"
#include "core/engine.h"
#include "meta/nebula_meta.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace sql {
namespace {

// ------------------------------- lexer ---------------------------------

TEST(SqlLexerTest, BasicTokens) {
  auto tokens = Lex("SELECT * FROM gene WHERE gid = 'JW0013'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kSymbol);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kSymbol);
  EXPECT_EQ((*tokens)[6].text, "=");
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[7].text, "JW0013");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, NumbersAndNegatives) {
  auto tokens = Lex("42 -7 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "-7");
  EXPECT_EQ((*tokens)[2].text, "3.5");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kNumber);
  }
}

TEST(SqlLexerTest, TwoCharOperators) {
  auto tokens = Lex("a <> b <= c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[5].text, ">=");
  EXPECT_EQ((*tokens)[7].text, "!=");
}

TEST(SqlLexerTest, QuoteEscaping) {
  auto tokens = Lex("'it''s a gene'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's a gene");
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT @ FROM x").ok());
}

// ------------------------------- parser --------------------------------

TEST(SqlParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM gene;");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_TRUE(select.columns.empty());
  EXPECT_EQ(select.query.table, "gene");
  EXPECT_TRUE(select.query.predicates.empty());
  EXPECT_FALSE(select.with_annotations);
}

TEST(SqlParserTest, SelectColumnsWhereConjunction) {
  auto stmt = ParseStatement(
      "select gid, name from gene where length > 1000 and family = 'F1' "
      "with annotations");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(select.columns.size(), 2u);
  ASSERT_EQ(select.query.predicates.size(), 2u);
  EXPECT_EQ(select.query.predicates[0].op, CompareOp::kGt);
  EXPECT_EQ(select.query.predicates[0].value, Value(int64_t{1000}));
  EXPECT_EQ(select.query.predicates[1].value, Value("F1"));
  EXPECT_TRUE(select.with_annotations);
}

TEST(SqlParserTest, ContainsOperator) {
  auto stmt = ParseStatement(
      "SELECT * FROM publication WHERE abstract CONTAINS 'JW0014'");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(select.query.predicates[0].op, CompareOp::kContainsToken);
}

TEST(SqlParserTest, Insert) {
  auto stmt = ParseStatement(
      "INSERT INTO gene VALUES ('JW0099', 'abcZ', 512, 'ACGT', 'F2')");
  ASSERT_TRUE(stmt.ok());
  const auto& insert = std::get<InsertStatement>(*stmt);
  EXPECT_EQ(insert.table, "gene");
  ASSERT_EQ(insert.values.size(), 5u);
  EXPECT_TRUE(insert.value_is_string[0]);
  EXPECT_FALSE(insert.value_is_string[2]);
}

TEST(SqlParserTest, Annotate) {
  auto stmt = ParseStatement(
      "ANNOTATE 'related to gene JW0014' ON gene WHERE gid = 'JW0019' BY 'bob'");
  ASSERT_TRUE(stmt.ok());
  const auto& annotate = std::get<AnnotateStatement>(*stmt);
  EXPECT_EQ(annotate.text, "related to gene JW0014");
  EXPECT_EQ(annotate.author, "bob");
  EXPECT_EQ(annotate.predicate.table, "gene");
  ASSERT_EQ(annotate.predicate.predicates.size(), 1u);
}

TEST(SqlParserTest, JoinWithQualifiedColumns) {
  auto stmt = ParseStatement(
      "SELECT gene.gid, protein.pid FROM gene JOIN protein "
      "WHERE gene.family = 'F1' AND protein.ptype = 'kinase'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(select.query.table, "gene");
  EXPECT_EQ(select.join_table, "protein");
  ASSERT_EQ(select.columns.size(), 2u);
  EXPECT_EQ(select.columns[0].table, "gene");
  EXPECT_EQ(select.columns[1].column, "pid");
  ASSERT_EQ(select.query.predicates.size(), 1u);
  ASSERT_EQ(select.join_predicates.size(), 1u);
  EXPECT_EQ(select.join_predicates[0].column, "ptype");
}

TEST(SqlParserTest, JoinRejectsUnknownQualifier) {
  EXPECT_FALSE(ParseStatement(
                   "SELECT * FROM gene JOIN protein WHERE other.x = 1")
                   .ok());
  EXPECT_FALSE(ParseStatement(
                   "SELECT * FROM gene JOIN protein WITH ANNOTATIONS")
                   .ok());
}

TEST(SqlParserTest, Rule) {
  auto stmt = ParseStatement(
      "RULE 'Rounded Flag' ON gene WHERE family = 'F1' BY 'curator'");
  ASSERT_TRUE(stmt.ok());
  const auto& rule = std::get<RuleStatement>(*stmt);
  EXPECT_EQ(rule.text, "Rounded Flag");
  EXPECT_EQ(rule.author, "curator");
  EXPECT_EQ(rule.predicate.table, "gene");
  ASSERT_EQ(rule.predicate.predicates.size(), 1u);
}

TEST(SqlParserTest, VerifyReject) {
  auto verify = ParseStatement("VERIFY ATTACHMENT 12;");
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(std::get<VerifyStatement>(*verify).accept);
  EXPECT_EQ(std::get<VerifyStatement>(*verify).vid, 12u);
  auto reject = ParseStatement("reject attachment 3");
  ASSERT_TRUE(reject.ok());
  EXPECT_FALSE(std::get<VerifyStatement>(*reject).accept);
}

TEST(SqlParserTest, Show) {
  auto pending = ParseStatement("SHOW PENDING");
  ASSERT_TRUE(pending.ok());
  EXPECT_EQ(std::get<ShowStatement>(*pending).what,
            ShowStatement::What::kPending);
  auto tables = ParseStatement("show tables;");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(std::get<ShowStatement>(*tables).what,
            ShowStatement::What::kTables);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("DROP TABLE gene").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM gene").ok());
  EXPECT_FALSE(ParseStatement("SELECT * gene").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM gene WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM gene trailing junk").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO gene VALUES ('x'").ok());
  EXPECT_FALSE(ParseStatement("ANNOTATE missing_quotes ON gene WHERE a=1")
                   .ok());
  EXPECT_FALSE(ParseStatement("VERIFY ATTACHMENT abc").ok());
  EXPECT_FALSE(ParseStatement("SHOW NONSENSE").ok());
}

// ------------------------------- session -------------------------------

class SqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* gene =
        *catalog_.CreateTable("gene",
                              Schema({{"gid", DataType::kString, true},
                                      {"name", DataType::kString, true},
                                      {"length", DataType::kInt64}}));
    ASSERT_TRUE(
        gene->Insert({Value("JW0013"), Value("grpC"), Value(int64_t{1130})})
            .ok());
    ASSERT_TRUE(
        gene->Insert({Value("JW0014"), Value("groP"), Value(int64_t{1916})})
            .ok());
    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    NebulaConfig config;
    config.bounds = {0.30, 0.85};
    engine_ = std::make_unique<NebulaEngine>(&catalog_, &store_, &meta_,
                                             config);
    session_ = std::make_unique<SqlSession>(engine_.get());
  }

  Catalog catalog_;
  NebulaMeta meta_;
  AnnotationStore store_;
  std::unique_ptr<NebulaEngine> engine_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(SqlSessionTest, SelectStarReturnsAllRowsAndColumns) {
  auto result = session_->Execute("SELECT * FROM gene");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns.size(), 3u);
  EXPECT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->message, "2 rows");
}

TEST_F(SqlSessionTest, SelectProjectionAndFilter) {
  auto result = session_->Execute(
      "SELECT name FROM gene WHERE length > 1500");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "groP");
}

TEST_F(SqlSessionTest, SelectUnknownColumnFails) {
  EXPECT_EQ(session_->Execute("SELECT bogus FROM gene").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session_->Execute("SELECT * FROM missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SqlSessionTest, InsertCoercesTypes) {
  ASSERT_TRUE(session_
                  ->Execute("INSERT INTO gene VALUES "
                            "('JW0015', 'insL', 1112)")
                  .ok());
  auto result = session_->Execute("SELECT * FROM gene WHERE gid = 'JW0015'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][2], "1112");
}

TEST_F(SqlSessionTest, InsertTypeMismatchFails) {
  EXPECT_FALSE(session_
                   ->Execute("INSERT INTO gene VALUES "
                             "('JW0016', 'aaaA', 'not-a-number')")
                   .ok());
  EXPECT_FALSE(
      session_->Execute("INSERT INTO gene VALUES ('JW0016')").ok());
}

TEST_F(SqlSessionTest, AnnotateTriggersDiscoveryAndPropagation) {
  auto result = session_->Execute(
      "ANNOTATE 'this gene is correlated to JW0014' ON gene "
      "WHERE gid = 'JW0013' BY 'alice'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The reference to JW0014 should have been discovered and auto-applied.
  auto select = session_->Execute(
      "SELECT gid FROM gene WHERE gid = 'JW0014' WITH ANNOTATIONS");
  ASSERT_TRUE(select.ok());
  ASSERT_EQ(select->rows.size(), 1u);
  EXPECT_NE(select->rows[0][1].find("correlated"), std::string::npos);
}

TEST_F(SqlSessionTest, AnnotateWithoutMatchFails) {
  EXPECT_EQ(session_
                ->Execute("ANNOTATE 'x' ON gene WHERE gid = 'JW9999'")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(SqlSessionTest, ShowTables) {
  auto result = session_->Execute("SHOW TABLES");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "gene");
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST_F(SqlSessionTest, PendingQueueAndVerifyCommand) {
  // Force everything into the pending band.
  engine_->config().bounds = {0.0, 1.0};
  ASSERT_TRUE(session_
                  ->Execute("ANNOTATE 'related to gene JW0014' ON gene "
                            "WHERE gid = 'JW0013'")
                  .ok());
  auto pending = session_->Execute("SHOW PENDING");
  ASSERT_TRUE(pending.ok());
  ASSERT_FALSE(pending->rows.empty());
  const std::string vid = pending->rows[0][0];
  ASSERT_TRUE(session_->Execute("VERIFY ATTACHMENT " + vid).ok());
  auto after = session_->Execute("SHOW PENDING");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), pending->rows.size() - 1);
  // Verifying twice fails.
  EXPECT_FALSE(session_->Execute("VERIFY ATTACHMENT " + vid).ok());
}

TEST_F(SqlSessionTest, RuleAttachesExistingAndFutureTuples) {
  // Both existing genes are long; register a rule over them.
  auto result = session_->Execute(
      "RULE 'long gene' ON gene WHERE length > 1000 BY 'curator'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->message.find("2 existing tuples"), std::string::npos);

  // A future insert matching the predicate is annotated automatically.
  auto insert = session_->Execute(
      "INSERT INTO gene VALUES ('JW0020', 'xyzA', 2000)");
  ASSERT_TRUE(insert.ok());
  EXPECT_NE(insert->message.find("1 auto-attachment rule fired"),
            std::string::npos);
  auto check = session_->Execute(
      "SELECT gid FROM gene WHERE gid = 'JW0020' WITH ANNOTATIONS");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->rows.size(), 1u);
  EXPECT_NE(check->rows[0][1].find("long gene"), std::string::npos);

  // A non-matching insert is not annotated.
  auto quiet = session_->Execute(
      "INSERT INTO gene VALUES ('JW0021', 'xyzB', 10)");
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->message.find("rule"), std::string::npos);
}

TEST_F(SqlSessionTest, JoinSelect) {
  // Add a protein table linked to gene.
  Table* protein = *catalog_.CreateTable(
      "protein", Schema({{"pid", DataType::kString, true},
                         {"gene_gid", DataType::kString}}));
  ASSERT_TRUE(protein->Insert({Value("P1"), Value("JW0013")}).ok());
  ASSERT_TRUE(protein->Insert({Value("P2"), Value("JW0014")}).ok());
  ASSERT_TRUE(
      catalog_.AddForeignKey("protein", "gene_gid", "gene", "gid").ok());

  auto result = session_->Execute(
      "SELECT gene.name, protein.pid FROM gene JOIN protein "
      "WHERE gene.gid = 'JW0013'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "grpC");
  EXPECT_EQ(result->rows[0][1], "P1");
  EXPECT_EQ(result->columns[0], "gene.name");

  // SELECT * over a join prefixes every column with its table.
  auto star = session_->Execute("SELECT * FROM gene JOIN protein");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->rows.size(), 2u);
  EXPECT_EQ(star->columns.front(), "gene.gid");
  EXPECT_EQ(star->columns.back(), "protein.gene_gid");

  // Ambiguous unqualified projection fails.
  auto ambiguous = session_->Execute(
      "SELECT gene_gid FROM protein JOIN gene");
  EXPECT_TRUE(ambiguous.ok());  // gene_gid exists only in protein
  EXPECT_FALSE(
      session_->Execute("SELECT nonexistent FROM gene JOIN protein").ok());
}

TEST_F(SqlSessionTest, ResultToStringRendersTable) {
  auto result = session_->Execute("SELECT gid FROM gene");
  ASSERT_TRUE(result.ok());
  const std::string rendered = result->ToString();
  EXPECT_NE(rendered.find("gid"), std::string::npos);
  EXPECT_NE(rendered.find("JW0013"), std::string::npos);
  EXPECT_NE(rendered.find("2 rows"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace nebula
