#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "annotation/quality.h"
#include "common/status.h"
#include "storage/schema.h"

namespace nebula {
namespace {

const TupleId kT0{0, 0};
const TupleId kT1{0, 1};
const TupleId kT2{0, 2};
const TupleId kOther{1, 0};

class AnnotationStoreTest : public ::testing::Test {
 protected:
  AnnotationStore store_;
};

TEST_F(AnnotationStoreTest, AddAndGet) {
  const AnnotationId id = store_.AddAnnotation("hello", "bob");
  EXPECT_EQ(id, 0u);
  auto ann = store_.GetAnnotation(id);
  ASSERT_TRUE(ann.ok());
  EXPECT_EQ((*ann)->text, "hello");
  EXPECT_EQ((*ann)->author, "bob");
  EXPECT_EQ(store_.num_annotations(), 1u);
  EXPECT_EQ(store_.GetAnnotation(99).status().code(), StatusCode::kNotFound);
}

TEST_F(AnnotationStoreTest, AttachTrueEdge) {
  const AnnotationId a = store_.AddAnnotation("x");
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  EXPECT_TRUE(store_.HasAttachment(a, kT0));
  EXPECT_EQ(store_.num_attachments(), 1u);
  const Attachment* edge = store_.FindAttachment(a, kT0);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->type, AttachmentType::kTrue);
  EXPECT_DOUBLE_EQ(edge->weight, 1.0);
}

TEST_F(AnnotationStoreTest, AttachPredictedValidatesWeight) {
  const AnnotationId a = store_.AddAnnotation("x");
  EXPECT_EQ(store_.Attach(a, kT0, AttachmentType::kPredicted, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.Attach(a, kT0, AttachmentType::kPredicted, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(store_.Attach(a, kT0, AttachmentType::kPredicted, 0.5).ok());
  EXPECT_DOUBLE_EQ(store_.FindAttachment(a, kT0)->weight, 0.5);
}

TEST_F(AnnotationStoreTest, AttachToMissingAnnotationFails) {
  EXPECT_EQ(store_.Attach(3, kT0).code(), StatusCode::kNotFound);
}

TEST_F(AnnotationStoreTest, DuplicateAttachmentRejected) {
  const AnnotationId a = store_.AddAnnotation("x");
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  EXPECT_EQ(store_.Attach(a, kT0).code(), StatusCode::kAlreadyExists);
}

TEST_F(AnnotationStoreTest, DetachRemovesEdge) {
  const AnnotationId a = store_.AddAnnotation("x");
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  ASSERT_TRUE(store_.Detach(a, kT0).ok());
  EXPECT_FALSE(store_.HasAttachment(a, kT0));
  EXPECT_EQ(store_.num_attachments(), 0u);
  EXPECT_TRUE(store_.AnnotationsOf(kT0).empty());
  EXPECT_EQ(store_.Detach(a, kT0).code(), StatusCode::kNotFound);
}

TEST_F(AnnotationStoreTest, PromotePredictedToTrue) {
  const AnnotationId a = store_.AddAnnotation("x");
  ASSERT_TRUE(store_.Attach(a, kT0, AttachmentType::kPredicted, 0.7).ok());
  ASSERT_TRUE(store_.PromoteToTrue(a, kT0).ok());
  const Attachment* edge = store_.FindAttachment(a, kT0);
  EXPECT_EQ(edge->type, AttachmentType::kTrue);
  EXPECT_DOUBLE_EQ(edge->weight, 1.0);
  EXPECT_EQ(store_.PromoteToTrue(a, kT1).code(), StatusCode::kNotFound);
}

TEST_F(AnnotationStoreTest, AttachedTuplesFocalSemantics) {
  const AnnotationId a = store_.AddAnnotation("x");
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  ASSERT_TRUE(store_.Attach(a, kT1, AttachmentType::kPredicted, 0.6).ok());
  EXPECT_EQ(store_.AttachedTuples(a).size(), 2u);
  // Focal (Def 3.5) = True attachments only.
  const auto focal = store_.AttachedTuples(a, /*true_only=*/true);
  ASSERT_EQ(focal.size(), 1u);
  EXPECT_EQ(focal[0], kT0);
}

TEST_F(AnnotationStoreTest, AnnotationsOfTuple) {
  const AnnotationId a = store_.AddAnnotation("a");
  const AnnotationId b = store_.AddAnnotation("b");
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  ASSERT_TRUE(store_.Attach(b, kT0, AttachmentType::kPredicted, 0.4).ok());
  EXPECT_EQ(store_.AnnotationsOf(kT0).size(), 2u);
  EXPECT_EQ(store_.AnnotationsOf(kT0, /*true_only=*/true).size(), 1u);
  EXPECT_TRUE(store_.AnnotationsOf(kOther).empty());
}

TEST_F(AnnotationStoreTest, PropagateAttachesAnnotationsToAnswers) {
  const AnnotationId a = store_.AddAnnotation("a");
  const AnnotationId b = store_.AddAnnotation("b");
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  ASSERT_TRUE(store_.Attach(a, kT1).ok());
  ASSERT_TRUE(store_.Attach(b, kT1, AttachmentType::kPredicted, 0.5).ok());

  const auto result = store_.Propagate({kT0, kT1, kT2});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].second.size(), 1u);  // kT0: {a}
  EXPECT_EQ(result[1].second.size(), 1u);  // kT1: {a} (predicted excluded)
  EXPECT_TRUE(result[2].second.empty());

  const auto with_predicted = store_.Propagate({kT1}, true);
  EXPECT_EQ(with_predicted[0].second.size(), 2u);
}

TEST_F(AnnotationStoreTest, AllAttachmentsDeterministicOrder) {
  const AnnotationId a = store_.AddAnnotation("a");
  const AnnotationId b = store_.AddAnnotation("b");
  ASSERT_TRUE(store_.Attach(b, kT1).ok());
  ASSERT_TRUE(store_.Attach(a, kT2).ok());
  ASSERT_TRUE(store_.Attach(a, kT0).ok());
  const auto all = store_.AllAttachments();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].annotation, a);
  EXPECT_EQ(all[0].tuple, kT0);
  EXPECT_EQ(all[1].tuple, kT2);
  EXPECT_EQ(all[2].annotation, b);
}

TEST_F(AnnotationStoreTest, AnnotatedTuples) {
  const AnnotationId a = store_.AddAnnotation("a");
  ASSERT_TRUE(store_.Attach(a, kT1).ok());
  ASSERT_TRUE(store_.Attach(a, kOther).ok());
  const auto tuples = store_.AnnotatedTuples();
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0], kT1);
  EXPECT_EQ(tuples[1], kOther);
}

// ------------------------------ quality --------------------------------

TEST(EdgeSetTest, AddContains) {
  EdgeSet set;
  set.Add(1, kT0);
  set.Add(1, kT0);  // idempotent
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Contains(1, kT0));
  EXPECT_FALSE(set.Contains(1, kT1));
  EXPECT_FALSE(set.Contains(2, kT0));
}

TEST(EdgeSetTest, TuplesOf) {
  EdgeSet set;
  set.Add(1, kT1);
  set.Add(1, kT0);
  set.Add(2, kT2);
  const auto tuples = set.TuplesOf(1);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0], kT0);
  EXPECT_TRUE(set.TuplesOf(9).empty());
}

TEST(EdgeSetTest, FromStoreRespectsTrueOnly) {
  AnnotationStore store;
  const AnnotationId a = store.AddAnnotation("a");
  ASSERT_TRUE(store.Attach(a, kT0).ok());
  ASSERT_TRUE(store.Attach(a, kT1, AttachmentType::kPredicted, 0.5).ok());
  EXPECT_EQ(EdgeSet::FromStore(store).size(), 2u);
  EXPECT_EQ(EdgeSet::FromStore(store, true).size(), 1u);
}

TEST(MeasureQualityTest, PerfectDatabase) {
  AnnotationStore store;
  const AnnotationId a = store.AddAnnotation("a");
  ASSERT_TRUE(store.Attach(a, kT0).ok());
  EdgeSet ideal;
  ideal.Add(a, kT0);
  const DatabaseQuality q = MeasureQuality(store, ideal);
  EXPECT_DOUBLE_EQ(q.false_negative_ratio, 0.0);
  EXPECT_DOUBLE_EQ(q.false_positive_ratio, 0.0);
}

TEST(MeasureQualityTest, UnderAnnotatedDatabase) {
  AnnotationStore store;
  const AnnotationId a = store.AddAnnotation("a");
  ASSERT_TRUE(store.Attach(a, kT0).ok());
  EdgeSet ideal;
  ideal.Add(a, kT0);
  ideal.Add(a, kT1);
  ideal.Add(a, kT2);
  ideal.Add(a, kOther);
  const DatabaseQuality q = MeasureQuality(store, ideal);
  EXPECT_DOUBLE_EQ(q.false_negative_ratio, 0.75);  // Eq. 1
  EXPECT_DOUBLE_EQ(q.false_positive_ratio, 0.0);   // no predicted edges
  EXPECT_EQ(q.missing_edges, 3u);
}

TEST(MeasureQualityTest, SpuriousEdges) {
  AnnotationStore store;
  const AnnotationId a = store.AddAnnotation("a");
  ASSERT_TRUE(store.Attach(a, kT0).ok());
  ASSERT_TRUE(store.Attach(a, kT1).ok());
  EdgeSet ideal;
  ideal.Add(a, kT0);
  const DatabaseQuality q = MeasureQuality(store, ideal);
  EXPECT_DOUBLE_EQ(q.false_positive_ratio, 0.5);  // Eq. 2
  EXPECT_EQ(q.spurious_edges, 1u);
  EXPECT_DOUBLE_EQ(q.false_negative_ratio, 0.0);
}

TEST(MeasureQualityTest, EmptyIdealAndEmptyStore) {
  AnnotationStore store;
  EdgeSet ideal;
  const DatabaseQuality q = MeasureQuality(store, ideal);
  EXPECT_DOUBLE_EQ(q.false_negative_ratio, 0.0);
  EXPECT_DOUBLE_EQ(q.false_positive_ratio, 0.0);
}

}  // namespace
}  // namespace nebula
