#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <filesystem>
#include <limits>

#include "annotation/annotation_store.h"
#include "annotation/serialize.h"
#include "common/status.h"
#include "core/engine.h"
#include "meta/nebula_meta.h"
#include "sql/session.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/value.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace nebula {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nebula_serialize_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Builds a small annotated database.
  void Populate(Catalog* catalog, AnnotationStore* store) {
    Table* gene = *catalog->CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"length", DataType::kInt64},
                        {"score", DataType::kDouble}}));
    Table* protein = *catalog->CreateTable(
        "protein", Schema({{"pid", DataType::kString, true},
                           {"gene_gid", DataType::kString}}));
    ASSERT_TRUE(gene->Insert({Value("JW0001"), Value(int64_t{100}),
                              Value(0.125)})
                    .ok());
    ASSERT_TRUE(gene->Insert({Value("JW0002"), Value(int64_t{-7}),
                              Value(1.0 / 3.0)})
                    .ok());
    ASSERT_TRUE(protein->Insert({Value("P00001"), Value("JW0001")}).ok());
    ASSERT_TRUE(
        catalog->AddForeignKey("protein", "gene_gid", "gene", "gid").ok());

    const AnnotationId a =
        store->AddAnnotation("text with\ttab and\nnewline", "alice");
    const AnnotationId b = store->AddAnnotation("plain", "");
    ASSERT_TRUE(store->Attach(a, {gene->id(), 0}).ok());
    ASSERT_TRUE(store->Attach(a, {protein->id(), 0}).ok());
    ASSERT_TRUE(
        store->Attach(b, {gene->id(), 1}, AttachmentType::kPredicted, 0.625)
            .ok());
  }

  std::filesystem::path dir_;
};

TEST_F(SerializeTest, EscapeRoundTrip) {
  const std::string nasty = "a\tb\nc\rd\\e'f";
  EXPECT_EQ(UnescapeField(EscapeField(nasty)), nasty);
  EXPECT_EQ(EscapeField("plain"), "plain");
  EXPECT_EQ(UnescapeField("plain"), "plain");
  // Escaped form contains no raw separators.
  EXPECT_EQ(EscapeField(nasty).find('\t'), std::string::npos);
  EXPECT_EQ(EscapeField(nasty).find('\n'), std::string::npos);
}

TEST_F(SerializeTest, SaveLoadRoundTripsCatalog) {
  Catalog catalog;
  AnnotationStore store;
  Populate(&catalog, &store);
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), catalog, &store).ok());

  Catalog loaded;
  AnnotationStore loaded_store;
  ASSERT_TRUE(
      DatabaseSerializer::Load(dir_.string(), &loaded, &loaded_store).ok());

  ASSERT_EQ(loaded.num_tables(), 2u);
  const Table* gene = *loaded.GetTable("gene");
  ASSERT_EQ(gene->num_rows(), 2u);
  EXPECT_EQ(gene->GetCell(0, 0), Value("JW0001"));
  EXPECT_EQ(gene->GetCell(1, 1), Value(int64_t{-7}));
  EXPECT_EQ(gene->GetCell(1, 2), Value(1.0 / 3.0));  // exact round trip
  EXPECT_TRUE(gene->schema().column(0).unique);
  EXPECT_FALSE(gene->schema().column(1).unique);

  ASSERT_EQ(loaded.foreign_keys().size(), 1u);
  EXPECT_EQ(loaded.foreign_keys()[0].parent_table, "gene");
  // FK navigation works after reload.
  const Table* protein = *loaded.GetTable("protein");
  EXPECT_EQ(loaded.FkNeighbors({protein->id(), 0}).size(), 1u);
}

TEST_F(SerializeTest, SaveLoadRoundTripsAnnotations) {
  Catalog catalog;
  AnnotationStore store;
  Populate(&catalog, &store);
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), catalog, &store).ok());

  Catalog loaded;
  AnnotationStore loaded_store;
  ASSERT_TRUE(
      DatabaseSerializer::Load(dir_.string(), &loaded, &loaded_store).ok());

  ASSERT_EQ(loaded_store.num_annotations(), 2u);
  EXPECT_EQ((*loaded_store.GetAnnotation(0))->text,
            "text with\ttab and\nnewline");
  EXPECT_EQ((*loaded_store.GetAnnotation(0))->author, "alice");
  EXPECT_EQ(loaded_store.num_attachments(), 3u);
  const Table* gene = *loaded.GetTable("gene");
  const Attachment* predicted =
      loaded_store.FindAttachment(1, {gene->id(), 1});
  ASSERT_NE(predicted, nullptr);
  EXPECT_EQ(predicted->type, AttachmentType::kPredicted);
  EXPECT_DOUBLE_EQ(predicted->weight, 0.625);
}

TEST_F(SerializeTest, DoubleEdgeCasesRoundTripBitExact) {
  // The %.17g double encoding must round-trip every representable edge:
  // non-finite values (glibc prints nan/inf/-inf; strtod reads them
  // back), signed zero, both ends of the normal range, a denormal, and
  // fractions that need all 17 significant digits.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                           kInf,
                           -kInf,
                           0.0,
                           -0.0,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           0.1,
                           1.0 / 3.0,
                           0.1 + 0.2,
                           std::nextafter(1.0, 0.0)};
  Catalog catalog;
  Table* table = *catalog.CreateTable(
      "edge", Schema({{"d", DataType::kDouble}}));
  for (const double d : values) {
    ASSERT_TRUE(table->Insert({Value(d)}).ok());
  }
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), catalog).ok());

  Catalog loaded;
  ASSERT_TRUE(DatabaseSerializer::Load(dir_.string(), &loaded).ok());
  const Table* back = *loaded.GetTable("edge");
  ASSERT_EQ(back->num_rows(), std::size(values));
  for (size_t i = 0; i < std::size(values); ++i) {
    const double got = back->GetCell(i, 0).AsDouble();
    if (std::isnan(values[i])) {
      EXPECT_TRUE(std::isnan(got)) << "row " << i;
    } else {
      EXPECT_EQ(got, values[i]) << "row " << i;  // exact, not approximate
      EXPECT_EQ(std::signbit(got), std::signbit(values[i])) << "row " << i;
    }
  }
}

TEST_F(SerializeTest, StoreFilesRoundTripViaSaveStoreLoadStore) {
  // SaveStore/LoadStore are the snapshot half of the serializer: only
  // the annotations/attachments files, written into an existing
  // directory. Empty text, empty author, and full-precision attachment
  // weights must survive exactly.
  AnnotationStore store;
  const AnnotationId empty_text = store.AddAnnotation("", "author");
  const AnnotationId empty_author = store.AddAnnotation("some text", "");
  const AnnotationId both_empty = store.AddAnnotation("", "");
  const double weights[] = {0.1 + 0.2, 1.0 / 3.0,
                            std::nextafter(1.0, 0.0),
                            std::numeric_limits<double>::min()};
  for (size_t i = 0; i < std::size(weights); ++i) {
    ASSERT_TRUE(store
                    .Attach(empty_text, {0, i}, AttachmentType::kPredicted,
                            weights[i])
                    .ok());
  }
  ASSERT_TRUE(store.Attach(empty_author, {1, 0}).ok());
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(DatabaseSerializer::SaveStore(dir_.string(), store).ok());

  AnnotationStore loaded;
  ASSERT_TRUE(DatabaseSerializer::LoadStore(dir_.string(), &loaded).ok());
  ASSERT_EQ(loaded.num_annotations(), 3u);
  EXPECT_EQ((*loaded.GetAnnotation(empty_text))->text, "");
  EXPECT_EQ((*loaded.GetAnnotation(empty_text))->author, "author");
  EXPECT_EQ((*loaded.GetAnnotation(empty_author))->author, "");
  EXPECT_EQ((*loaded.GetAnnotation(both_empty))->text, "");
  ASSERT_EQ(loaded.num_attachments(), store.num_attachments());
  for (size_t i = 0; i < std::size(weights); ++i) {
    const Attachment* att = loaded.FindAttachment(empty_text, {0, i});
    ASSERT_NE(att, nullptr);
    EXPECT_EQ(att->weight, weights[i]);  // bit-exact through %.17g
  }

  // Loading into a non-empty store is refused, and a directory without
  // store files is a legal empty store.
  EXPECT_FALSE(DatabaseSerializer::LoadStore(dir_.string(), &loaded).ok());
  const auto empty_dir = dir_ / "empty";
  std::filesystem::create_directories(empty_dir);
  AnnotationStore none;
  ASSERT_TRUE(DatabaseSerializer::LoadStore(empty_dir.string(), &none).ok());
  EXPECT_EQ(none.num_annotations(), 0u);
}

TEST_F(SerializeTest, CatalogOnlySave) {
  Catalog catalog;
  AnnotationStore store;
  Populate(&catalog, &store);
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), catalog).ok());
  Catalog loaded;
  ASSERT_TRUE(DatabaseSerializer::Load(dir_.string(), &loaded).ok());
  EXPECT_EQ(loaded.num_tables(), 2u);
}

TEST_F(SerializeTest, LoadIntoNonEmptyCatalogFails) {
  Catalog catalog;
  AnnotationStore store;
  Populate(&catalog, &store);
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), catalog).ok());
  Catalog not_empty;
  ASSERT_TRUE(
      not_empty.CreateTable("x", Schema({{"c", DataType::kInt64}})).ok());
  EXPECT_EQ(DatabaseSerializer::Load(dir_.string(), &not_empty).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, LoadMissingDirectoryFails) {
  Catalog catalog;
  EXPECT_EQ(
      DatabaseSerializer::Load("/nonexistent/nebula", &catalog).code(),
      StatusCode::kNotFound);
}

TEST_F(SerializeTest, CorruptManifestFails) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(dir_ / "MANIFEST");
    out << "not-a-nebula-db\n";
  }
  Catalog catalog;
  EXPECT_EQ(DatabaseSerializer::Load(dir_.string(), &catalog).code(),
            StatusCode::kCorruption);
}

TEST_F(SerializeTest, UnsupportedVersionFails) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(dir_ / "MANIFEST");
    out << "nebula-db\t999\n";
  }
  Catalog catalog;
  EXPECT_EQ(DatabaseSerializer::Load(dir_.string(), &catalog).code(),
            StatusCode::kNotSupported);
}

TEST_F(SerializeTest, LoadedDatabaseIsQueryable) {
  Catalog catalog;
  AnnotationStore store;
  Populate(&catalog, &store);
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), catalog, &store).ok());
  Catalog loaded;
  AnnotationStore loaded_store;
  ASSERT_TRUE(
      DatabaseSerializer::Load(dir_.string(), &loaded, &loaded_store).ok());
  // Unique index enforcement survives the round trip.
  Table* gene = *loaded.GetTable("gene");
  EXPECT_FALSE(gene->Insert({Value("JW0001"), Value(int64_t{1}),
                             Value(0.0)})
                   .ok());
  // Annotation propagation works on the loaded store.
  const auto propagated =
      loaded_store.Propagate({{gene->id(), 0}});
  ASSERT_EQ(propagated.size(), 1u);
  EXPECT_EQ(propagated[0].second.size(), 1u);
}

TEST_F(SerializeTest, GeneratedDatasetRoundTripsAndStaysQueryable) {
  // End-to-end: synthesize a dataset, persist it, reload it, and drive
  // the reloaded database through the SQL front-end and the Nebula
  // pipeline.
  DatasetSpec spec = DatasetSpec::Tiny();
  spec.num_genes = 150;
  spec.num_proteins = 90;
  spec.num_publications = 200;
  auto dataset = GenerateBioDataset(spec);
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(DatabaseSerializer::Save(dir_.string(), (*dataset)->catalog,
                                       &(*dataset)->store)
                  .ok());

  Catalog loaded;
  AnnotationStore loaded_store;
  ASSERT_TRUE(
      DatabaseSerializer::Load(dir_.string(), &loaded, &loaded_store).ok());
  EXPECT_EQ(loaded.TotalRows(), (*dataset)->catalog.TotalRows());
  EXPECT_EQ(loaded_store.num_attachments(),
            (*dataset)->store.num_attachments());

  // The loaded database needs its own meta (meta is configuration, not
  // data; re-declare it as the generator does).
  NebulaMeta meta;
  ASSERT_TRUE(meta.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
  ASSERT_TRUE(meta.SetColumnPattern("gene", "gid", "JW[0-9]{5}").ok());
  ASSERT_TRUE(meta.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
  NebulaEngine engine(&loaded, &loaded_store, &meta);
  engine.RebuildAcg();
  EXPECT_GT(engine.acg().num_nodes(), 0u);

  sql::SqlSession session(&engine);
  auto tables = session.Execute("SHOW TABLES");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->rows.size(), 5u);
  auto join = session.Execute(
      "SELECT gene.gid, protein.pid FROM protein JOIN gene");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->rows.size(), 90u);

  // The Nebula pipeline works against the reloaded data: annotate a gene
  // by referencing another gene's gid.
  const Table* gene = *loaded.GetTable("gene");
  const std::string target_gid = gene->GetCell(5, 0).AsString();
  auto report = engine.InsertAnnotation("see gene " + target_gid,
                                        {{gene->id(), 0}}, "it");
  ASSERT_TRUE(report.ok());
  bool found = false;
  for (const auto& c : report->candidates) {
    if (c.tuple.table_id == gene->id() && c.tuple.row == 5) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nebula
