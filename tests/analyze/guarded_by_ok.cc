// Positive control for the -DNEBULA_ANALYZE gate: correctly disciplined
// code must compile warning-clean under -Werror=thread-safety. Compiled
// only via try_compile at configure time (see tests/CMakeLists.txt).

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    nebula::MutexLock lock(mutex_);
    ++value_;
  }

  int Value() const {
    nebula::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable nebula::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Value() == 1 ? 0 : 1;
}
