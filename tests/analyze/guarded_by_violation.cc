// Negative control for the -DNEBULA_ANALYZE gate: this TU reads a
// GUARDED_BY field without holding its mutex and MUST FAIL to compile
// under -Werror=thread-safety. If it ever compiles, the analysis is not
// active and the configure step aborts (see tests/CMakeLists.txt).

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    nebula::MutexLock lock(mutex_);
    ++value_;
  }

  // Deliberate lock-discipline violation: unlocked read of value_.
  int ValueUnlocked() const { return value_; }

 private:
  mutable nebula::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.ValueUnlocked() == 1 ? 0 : 1;
}
