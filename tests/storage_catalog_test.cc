#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateTable("gene",
                                 Schema({{"gid", DataType::kString, true},
                                         {"name", DataType::kString}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("protein",
                                 Schema({{"pid", DataType::kString, true},
                                         {"gene_gid", DataType::kString}}))
                    .ok());
  }

  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGet) {
  EXPECT_EQ(catalog_.num_tables(), 2u);
  ASSERT_TRUE(catalog_.GetTable("gene").ok());
  ASSERT_TRUE(catalog_.GetTable("GENE").ok());  // case-insensitive
  EXPECT_TRUE(catalog_.HasTable("protein"));
  EXPECT_FALSE(catalog_.HasTable("publication"));
  EXPECT_EQ(catalog_.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  auto r = catalog_.CreateTable("Gene", Schema({{"x", DataType::kInt64}}));
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, GetTableById) {
  const Table* gene = *catalog_.GetTable("gene");
  EXPECT_EQ(catalog_.GetTableById(gene->id()), gene);
}

TEST_F(CatalogTest, ForeignKeyValidation) {
  EXPECT_TRUE(
      catalog_.AddForeignKey("protein", "gene_gid", "gene", "gid").ok());
  EXPECT_EQ(catalog_.AddForeignKey("protein", "nope", "gene", "gid").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_.AddForeignKey("protein", "gene_gid", "nope", "gid")
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_.foreign_keys().size(), 1u);
}

TEST_F(CatalogTest, ForeignKeysOf) {
  ASSERT_TRUE(
      catalog_.AddForeignKey("protein", "gene_gid", "gene", "gid").ok());
  EXPECT_EQ(catalog_.ForeignKeysOf("gene").size(), 1u);
  EXPECT_EQ(catalog_.ForeignKeysOf("protein").size(), 1u);
  EXPECT_TRUE(catalog_.ForeignKeysOf("other").empty());
}

TEST_F(CatalogTest, FkNeighborsBothDirections) {
  Table* gene = *catalog_.GetTable("gene");
  Table* protein = *catalog_.GetTable("protein");
  ASSERT_TRUE(
      catalog_.AddForeignKey("protein", "gene_gid", "gene", "gid").ok());
  ASSERT_TRUE(gene->Insert({Value("JW0001"), Value("aaaA")}).ok());
  ASSERT_TRUE(gene->Insert({Value("JW0002"), Value("bbbB")}).ok());
  ASSERT_TRUE(protein->Insert({Value("P1"), Value("JW0001")}).ok());
  ASSERT_TRUE(protein->Insert({Value("P2"), Value("JW0001")}).ok());

  // child -> parent.
  const auto parents = catalog_.FkNeighbors({protein->id(), 0});
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0].table_id, gene->id());
  EXPECT_EQ(parents[0].row, 0u);

  // parent -> children.
  const auto children = catalog_.FkNeighbors({gene->id(), 0});
  EXPECT_EQ(children.size(), 2u);

  // Unreferenced parent has no neighbors.
  EXPECT_TRUE(catalog_.FkNeighbors({gene->id(), 1}).empty());
}

TEST_F(CatalogTest, TotalRows) {
  Table* gene = *catalog_.GetTable("gene");
  ASSERT_TRUE(gene->Insert({Value("JW0001"), Value("aaaA")}).ok());
  EXPECT_EQ(catalog_.TotalRows(), 1u);
}

}  // namespace
}  // namespace nebula
