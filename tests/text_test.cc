#include <gtest/gtest.h>

#include "common/status.h"
#include "text/lexicon.h"
#include "text/pattern.h"
#include "text/similarity.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace nebula {
namespace {

// ------------------------------ tokenizer ------------------------------

TEST(TokenizerTest, BasicSplitWithPositions) {
  const auto toks = Tokenize("gene JW0014 of grpC");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "gene");
  EXPECT_EQ(toks[1].text, "JW0014");
  EXPECT_EQ(toks[1].lower, "jw0014");
  EXPECT_EQ(toks[3].text, "grpC");
  for (size_t i = 0; i < toks.size(); ++i) EXPECT_EQ(toks[i].position, i);
}

TEST(TokenizerTest, KeepsHyphenatedIdentifiersTogether) {
  const auto toks = Tokenize("refers to protein G-Actin here");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].text, "G-Actin");
}

TEST(TokenizerTest, TrimsEdgeConnectors) {
  const auto toks = Tokenize("-actin- _x_");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "actin");
  EXPECT_EQ(toks[1].text, "x");
}

TEST(TokenizerTest, PunctuationDiscarded) {
  const auto toks = Tokenize("genes: JW0013, JW0014 (and grpC).");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "genes");
  EXPECT_EQ(toks[4].text, "grpC");
}

TEST(TokenizerTest, CharOffsetsPointIntoOriginal) {
  const std::string text = "see JW0014!";
  const auto toks = Tokenize(text);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(text.substr(toks[1].char_offset, 6), "JW0014");
}

TEST(TokenizerTest, EmptyAndOnlyPunctuation) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("...---").empty());
}

TEST(TokenizerTest, TokenizeLowerMatches) {
  const auto lows = TokenizeLower("Gene JW0014");
  ASSERT_EQ(lows.size(), 2u);
  EXPECT_EQ(lows[0], "gene");
  EXPECT_EQ(lows[1], "jw0014");
}

// ------------------------------ stopwords ------------------------------

TEST(StopwordsTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "is", "of", "and", "it", "to", "this"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, DomainWordsAreNot) {
  for (const char* w : {"gene", "protein", "jw0014", "grpc", "kinase"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

// ------------------------------ similarity ------------------------------

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("gene", "gene"), 0u);
  EXPECT_EQ(EditDistance("gene", "genes"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("abcd", "dcba"), EditDistance("dcba", "abcd"));
}

TEST(EditSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("x", "x"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("ab", "cd"), 0.0);
  const double s = EditSimilarity("kinase", "kinases");
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

TEST(TrigramJaccardTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("actin", "actin"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("", ""), 1.0);
}

TEST(TrigramJaccardTest, DisjointNearZero) {
  EXPECT_LT(TrigramJaccard("aaaa", "zzzz"), 0.05);
}

TEST(TrigramJaccardTest, VariantsScoreHigh) {
  EXPECT_GT(TrigramJaccard("kinase", "kinase2"), 0.5);
  EXPECT_GT(TrigramJaccard("braktorin", "braktorin3"), 0.6);
}

TEST(TrigramJaccardTest, SymmetricAndBounded) {
  const double a = TrigramJaccard("transport", "transportin");
  const double b = TrigramJaccard("transportin", "transport");
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

TEST(StemLiteTest, SuffixRules) {
  EXPECT_EQ(StemLite("genes"), "gene");
  EXPECT_EQ(StemLite("families"), "family");
  EXPECT_EQ(StemLite("binding"), "bind");
  EXPECT_EQ(StemLite("quickly"), "quick");
  EXPECT_EQ(StemLite("classes"), "class");
}

TEST(StemLiteTest, ShortAndNonSuffixedUnchanged) {
  EXPECT_EQ(StemLite("gas"), "gas");  // too short to strip
  EXPECT_EQ(StemLite("is"), "is");
  EXPECT_EQ(StemLite("gene"), "gene");
  EXPECT_EQ(StemLite("jw0014"), "jw0014");
}

// ------------------------------ lexicon ------------------------------

TEST(LexiconTest, SynonymRing) {
  Lexicon lex;
  lex.AddSynonyms({"gene", "locus"});
  EXPECT_TRUE(lex.AreSynonyms("gene", "locus"));
  EXPECT_TRUE(lex.AreSynonyms("LOCUS", "Gene"));  // case-insensitive
  EXPECT_TRUE(lex.AreSynonyms("gene", "gene"));   // reflexive
  EXPECT_FALSE(lex.AreSynonyms("gene", "protein"));
}

TEST(LexiconTest, RingMerging) {
  Lexicon lex;
  lex.AddSynonyms({"a", "b"});
  lex.AddSynonyms({"c", "d"});
  EXPECT_FALSE(lex.AreSynonyms("a", "c"));
  lex.AddSynonyms({"b", "c"});  // merges the two rings
  EXPECT_TRUE(lex.AreSynonyms("a", "d"));
}

TEST(LexiconTest, SynonymsOfExcludesSelf) {
  Lexicon lex;
  lex.AddSynonyms({"gene", "locus", "cistron"});
  const auto syns = lex.SynonymsOf("gene");
  ASSERT_EQ(syns.size(), 2u);
  EXPECT_EQ(syns[0], "cistron");
  EXPECT_EQ(syns[1], "locus");
  EXPECT_TRUE(lex.SynonymsOf("unknown").empty());
}

TEST(LexiconTest, HyponymsTransitive) {
  Lexicon lex;
  lex.AddHyponym("kinase", "enzyme");
  lex.AddHyponym("enzyme", "protein");
  EXPECT_TRUE(lex.IsHyponymOf("kinase", "enzyme"));
  EXPECT_TRUE(lex.IsHyponymOf("kinase", "protein"));
  EXPECT_FALSE(lex.IsHyponymOf("protein", "kinase"));
  EXPECT_FALSE(lex.IsHyponymOf("unknown", "protein"));
}

TEST(LexiconTest, HyponymThroughSynonym) {
  Lexicon lex;
  lex.AddSynonyms({"protein", "polypeptide"});
  lex.AddHyponym("enzyme", "protein");
  EXPECT_TRUE(lex.IsHyponymOf("enzyme", "polypeptide"));
}

TEST(LexiconTest, BuiltinCoversSchemaVocabulary) {
  const Lexicon lex = Lexicon::BuiltinEnglishBio();
  EXPECT_TRUE(lex.AreSynonyms("gene", "locus"));
  EXPECT_TRUE(lex.AreSynonyms("publication", "article"));
  EXPECT_TRUE(lex.AreSynonyms("id", "accession"));
  EXPECT_TRUE(lex.IsHyponymOf("kinase", "protein"));
  EXPECT_GT(lex.num_words(), 30u);
}

// ------------------------------ pattern ------------------------------

TEST(PatternTest, GeneIdPattern) {
  auto p = ValuePattern::Compile("JW[0-9]{4}");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Matches("JW0014"));
  EXPECT_FALSE(p->Matches("JW014"));
  EXPECT_FALSE(p->Matches("XJW0014"));  // whole-string semantics
  EXPECT_FALSE(p->Matches("JW00140"));
  EXPECT_FALSE(p->Matches("jw0014"));   // case-sensitive
}

TEST(PatternTest, GeneNamePattern) {
  auto p = ValuePattern::Compile("[a-z]{3}[A-Z]");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Matches("grpC"));
  EXPECT_TRUE(p->Matches("nhaA"));
  EXPECT_FALSE(p->Matches("grpc"));
  EXPECT_FALSE(p->Matches("grC"));
}

TEST(PatternTest, BadPatternReturnsError) {
  auto p = ValuePattern::Compile("[unclosed");
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, PatternAccessorAndCopy) {
  auto p = ValuePattern::Compile("F[0-9]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->pattern(), "F[0-9]");
  ValuePattern copy = *p;  // copyable (shared regex)
  EXPECT_TRUE(copy.Matches("F3"));
}

}  // namespace
}  // namespace nebula
