#include <gtest/gtest.h>

#include "annotation/annotation_store.h"
#include "core/acg.h"
#include "storage/schema.h"

namespace nebula {
namespace {

const TupleId kT0{0, 0};
const TupleId kT1{0, 1};
const TupleId kT2{0, 2};
const TupleId kT3{0, 3};
const TupleId kT4{0, 4};
const TupleId kFar{0, 99};

/// Builds the store: a1 -> {t0, t1}, a2 -> {t1, t2}, a3 -> {t0, t1}.
AnnotationStore MakeStore() {
  AnnotationStore store;
  const AnnotationId a1 = store.AddAnnotation("a1");
  const AnnotationId a2 = store.AddAnnotation("a2");
  const AnnotationId a3 = store.AddAnnotation("a3");
  EXPECT_TRUE(store.Attach(a1, kT0).ok());
  EXPECT_TRUE(store.Attach(a1, kT1).ok());
  EXPECT_TRUE(store.Attach(a2, kT1).ok());
  EXPECT_TRUE(store.Attach(a2, kT2).ok());
  EXPECT_TRUE(store.Attach(a3, kT0).ok());
  EXPECT_TRUE(store.Attach(a3, kT1).ok());
  return store;
}

TEST(AcgTest, BuildFromStoreCreatesNodesAndEdges) {
  const AnnotationStore store = MakeStore();
  Acg acg;
  acg.BuildFromStore(store);
  EXPECT_EQ(acg.num_nodes(), 3u);
  EXPECT_EQ(acg.num_edges(), 2u);  // (t0,t1) and (t1,t2)
  EXPECT_TRUE(acg.HasNode(kT0));
  EXPECT_FALSE(acg.HasNode(kFar));
}

TEST(AcgTest, EdgeWeightIsJaccardOverAnnotationSets) {
  const AnnotationStore store = MakeStore();
  Acg acg;
  acg.BuildFromStore(store);
  // t0 has {a1,a3}; t1 has {a1,a2,a3}; common = 2; union = 3.
  EXPECT_NEAR(acg.EdgeWeight(kT0, kT1), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(acg.EdgeWeight(kT1, kT0), 2.0 / 3.0, 1e-9);  // symmetric
  // t1,t2: common = 1 (a2); union = 3.
  EXPECT_NEAR(acg.EdgeWeight(kT1, kT2), 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(acg.EdgeWeight(kT0, kT2), 0.0);  // no common annotation
  EXPECT_DOUBLE_EQ(acg.EdgeWeight(kT0, kFar), 0.0);
}

TEST(AcgTest, PredictedEdgesExcludedFromBuild) {
  AnnotationStore store;
  const AnnotationId a = store.AddAnnotation("a");
  ASSERT_TRUE(store.Attach(a, kT0).ok());
  ASSERT_TRUE(store.Attach(a, kT1, AttachmentType::kPredicted, 0.5).ok());
  Acg acg;
  acg.BuildFromStore(store);
  EXPECT_EQ(acg.num_edges(), 0u);
  EXPECT_TRUE(acg.HasNode(kT0));
  EXPECT_FALSE(acg.HasNode(kT1));
}

TEST(AcgTest, IncrementalAddMatchesBatchBuild) {
  const AnnotationStore store = MakeStore();
  Acg batch;
  batch.BuildFromStore(store);

  Acg incremental;
  for (AnnotationId a = 0; a < store.num_annotations(); ++a) {
    std::vector<TupleId> seen;
    for (const TupleId& t : store.AttachedTuples(a, true)) {
      incremental.AddAttachment(a, t, seen);
      seen.push_back(t);
    }
  }
  EXPECT_EQ(incremental.num_nodes(), batch.num_nodes());
  EXPECT_EQ(incremental.num_edges(), batch.num_edges());
  EXPECT_NEAR(incremental.EdgeWeight(kT0, kT1), batch.EdgeWeight(kT0, kT1),
              1e-9);
}

TEST(AcgTest, NeighborsSortedAndWeighted) {
  const AnnotationStore store = MakeStore();
  Acg acg;
  acg.BuildFromStore(store);
  const auto nbrs = acg.Neighbors(kT1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].first, kT0);
  EXPECT_EQ(nbrs[1].first, kT2);
  EXPECT_GT(nbrs[0].second, nbrs[1].second);
  EXPECT_TRUE(acg.Neighbors(kFar).empty());
}

TEST(AcgTest, KHopNeighborhood) {
  // Chain: t0 - t1 - t2 - t3 - t4.
  AnnotationStore store;
  for (int i = 0; i < 4; ++i) {
    const AnnotationId a = store.AddAnnotation("x");
    ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i)}).ok());
    ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i + 1)}).ok());
  }
  Acg acg;
  acg.BuildFromStore(store);

  EXPECT_EQ(acg.KHopNeighborhood({kT0}, 0).size(), 1u);  // focal only
  EXPECT_EQ(acg.KHopNeighborhood({kT0}, 1).size(), 2u);
  EXPECT_EQ(acg.KHopNeighborhood({kT0}, 2).size(), 3u);
  EXPECT_EQ(acg.KHopNeighborhood({kT0}, 10).size(), 5u);
  // Multi-focal: union of both BFS trees.
  EXPECT_EQ(acg.KHopNeighborhood({kT0, kT4}, 1).size(), 4u);
  // Absent focal contributes nothing.
  EXPECT_TRUE(acg.KHopNeighborhood({kFar}, 3).empty());
}

TEST(AcgTest, HopDistance) {
  AnnotationStore store;
  for (int i = 0; i < 3; ++i) {
    const AnnotationId a = store.AddAnnotation("x");
    ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i)}).ok());
    ASSERT_TRUE(store.Attach(a, {0, static_cast<uint64_t>(i + 1)}).ok());
  }
  Acg acg;
  acg.BuildFromStore(store);
  EXPECT_EQ(acg.HopDistance({kT0}, kT0), 0);
  EXPECT_EQ(acg.HopDistance({kT0}, kT1), 1);
  EXPECT_EQ(acg.HopDistance({kT0}, kT3), 3);
  EXPECT_EQ(acg.HopDistance({kT0, kT2}, kT3), 1);  // closest focal wins
  EXPECT_EQ(acg.HopDistance({kT0}, kFar), -1);     // not in graph
}

TEST(AcgTest, HopDistanceDisconnected) {
  AnnotationStore store;
  const AnnotationId a = store.AddAnnotation("x");
  ASSERT_TRUE(store.Attach(a, kT0).ok());
  ASSERT_TRUE(store.Attach(a, kT1).ok());
  const AnnotationId b = store.AddAnnotation("y");
  ASSERT_TRUE(store.Attach(b, kT3).ok());
  ASSERT_TRUE(store.Attach(b, kT4).ok());
  Acg acg;
  acg.BuildFromStore(store);
  EXPECT_EQ(acg.HopDistance({kT0}, kT3), -1);
}

// ----------------------------- stability --------------------------------

TEST(AcgStabilityTest, StartsUnstable) {
  Acg acg;
  EXPECT_FALSE(acg.stable());
}

TEST(AcgStabilityTest, BecomesStableWhenFewNewEdges) {
  AcgStabilityConfig config;
  config.batch_size = 3;
  config.mu = 0.5;
  Acg acg(config);
  // Annotations re-attaching to the same pair: the first creates the
  // edge, the rest do not. The batch of the first 3 annotations closes
  // when the 4th annotation's first attachment arrives.
  for (AnnotationId a = 0; a < 4; ++a) {
    acg.AddAttachment(a, kT0, {});
    acg.AddAttachment(a, kT1, {kT0});
  }
  // Closed batch: 3 annotations, 6 attachments, 1 new edge: 1/6 < 0.5.
  EXPECT_TRUE(acg.stable());
  // The 4th annotation opened the next batch.
  EXPECT_EQ(acg.batch_annotations(), 1u);
  EXPECT_EQ(acg.batch_attachments(), 2u);
}

TEST(AcgStabilityTest, StaysUnstableWhenManyNewEdges) {
  AcgStabilityConfig config;
  config.batch_size = 2;
  config.mu = 0.2;
  Acg acg(config);
  // Every attachment creates a brand-new edge.
  acg.AddAttachment(0, kT0, {});
  acg.AddAttachment(0, kT1, {kT0});
  acg.AddAttachment(1, kT2, {});
  acg.AddAttachment(1, kT3, {kT2});
  acg.AddAttachment(2, kT4, {});  // closes the {0,1} batch
  EXPECT_FALSE(acg.stable());
}

TEST(AcgStabilityTest, StabilityReevaluatedPerBatch) {
  AcgStabilityConfig config;
  config.batch_size = 2;
  config.mu = 0.4;
  Acg acg(config);
  // Batch 1: all new edges -> unstable once closed.
  acg.AddAttachment(0, kT0, {});
  acg.AddAttachment(0, kT1, {kT0});
  acg.AddAttachment(1, kT2, {kT0, kT1});
  EXPECT_FALSE(acg.stable());
  // Batch 2: repeats of existing edges only.
  acg.AddAttachment(2, kT0, {});  // closes batch 1 (3 new edges / 3)
  EXPECT_FALSE(acg.stable());
  acg.AddAttachment(2, kT1, {kT0});
  acg.AddAttachment(3, kT1, {});
  acg.AddAttachment(3, kT2, {kT1});
  acg.AddAttachment(4, kT0, {});  // closes batch 2 (0 new edges / 4)
  EXPECT_TRUE(acg.stable());
}

// ------------------------------ profile ---------------------------------

TEST(AcgProfileTest, RecordAndSelectK) {
  Acg acg;
  // Mirror the paper's Figure 7 narrative: 71% within 2 hops, 93% within
  // 3 hops.
  for (int i = 0; i < 40; ++i) acg.RecordProfilePoint(1);
  for (int i = 0; i < 31; ++i) acg.RecordProfilePoint(2);
  for (int i = 0; i < 22; ++i) acg.RecordProfilePoint(3);
  for (int i = 0; i < 7; ++i) acg.RecordProfilePoint(5);
  EXPECT_EQ(acg.SelectK(0.70), 2u);
  EXPECT_EQ(acg.SelectK(0.93), 3u);
  EXPECT_EQ(acg.SelectK(1.00), 5u);
}

TEST(AcgProfileTest, EmptyProfileUsesFallback) {
  Acg acg;
  EXPECT_EQ(acg.SelectK(0.9, 4), 4u);
}

TEST(AcgProfileTest, UnreachableGoesToOverflowBucket) {
  Acg acg;
  acg.RecordProfilePoint(-1);
  acg.RecordProfilePoint(1000);
  EXPECT_EQ(acg.profile().back(), 2u);
}

}  // namespace
}  // namespace nebula
