#include <gtest/gtest.h>

#include "common/random.h"
#include "keyword/engine.h"
#include "keyword/mini_db.h"
#include "keyword/query_types.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"
#include "storage/query.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace nebula {
namespace {

/// Fixture: a small Figure-1-style database with gene / protein /
/// publication tables, ConceptRefs metadata, and a text index over the
/// publication abstracts.
class KeywordEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gene_ = *catalog_.CreateTable(
        "gene", Schema({{"gid", DataType::kString, true},
                        {"name", DataType::kString, true},
                        {"family", DataType::kString}}));
    protein_ = *catalog_.CreateTable(
        "protein", Schema({{"pid", DataType::kString, true},
                           {"pname", DataType::kString},
                           {"ptype", DataType::kString}}));
    pub_ = *catalog_.CreateTable(
        "publication", Schema({{"pubid", DataType::kString, true},
                               {"abstract", DataType::kString}}));

    auto add_gene = [&](const char* gid, const char* name, const char* fam) {
      ASSERT_TRUE(gene_->Insert({Value(gid), Value(name), Value(fam)}).ok());
    };
    add_gene("JW0013", "grpC", "F1");
    add_gene("JW0014", "groP", "F6");
    add_gene("JW0019", "yaaB", "F3");
    ASSERT_TRUE(
        protein_->Insert({Value("P00001"), Value("Actin"), Value("kinase")})
            .ok());
    ASSERT_TRUE(protein_
                    ->Insert({Value("P00002"), Value("Actin"),
                              Value("receptor")})
                    .ok());
    ASSERT_TRUE(pub_->Insert({Value("PUB1"),
                              Value("study of gene JW0014 expression")})
                    .ok());
    ASSERT_TRUE(pub_->Insert({Value("PUB2"),
                              Value("growth rate analysis methods")})
                    .ok());
    ASSERT_TRUE(pub_->BuildTextIndex(1).ok());

    ASSERT_TRUE(meta_.AddConcept("Gene", "gene", {{"gid"}, {"name"}}).ok());
    ASSERT_TRUE(
        meta_.AddConcept("Protein", "protein", {{"pid"}, {"pname", "ptype"}})
            .ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]").ok());
    ASSERT_TRUE(meta_.SetColumnPattern("protein", "pid", "P[0-9]{5}").ok());
    ASSERT_TRUE(meta_
                    .SetColumnOntology("protein", "ptype",
                                       {"kinase", "receptor"})
                    .ok());
    Rng rng(3);
    ASSERT_TRUE(meta_.DrawColumnSamples(catalog_, 10, &rng).ok());
    engine_ = std::make_unique<KeywordSearchEngine>(&catalog_, &meta_);
  }

  bool HasMapping(const std::vector<KeywordMapping>& ms,
                  KeywordMapping::Kind kind, const std::string& table,
                  const std::string& column = "") {
    for (const auto& m : ms) {
      if (m.kind == kind && m.table == table &&
          (column.empty() || m.column == column)) {
        return true;
      }
    }
    return false;
  }

  Catalog catalog_;
  NebulaMeta meta_;
  Table* gene_ = nullptr;
  Table* protein_ = nullptr;
  Table* pub_ = nullptr;
  std::unique_ptr<KeywordSearchEngine> engine_;
};

TEST_F(KeywordEngineTest, MapKeywordTableName) {
  const auto ms = engine_->MapKeyword("gene");
  EXPECT_TRUE(HasMapping(ms, KeywordMapping::Kind::kTableName, "gene"));
}

TEST_F(KeywordEngineTest, MapKeywordColumnName) {
  const auto ms = engine_->MapKeyword("gid");
  EXPECT_TRUE(
      HasMapping(ms, KeywordMapping::Kind::kColumnName, "gene", "gid"));
}

TEST_F(KeywordEngineTest, MapKeywordValueByPattern) {
  const auto ms = engine_->MapKeyword("JW0013");
  ASSERT_FALSE(ms.empty());
  EXPECT_TRUE(HasMapping(ms, KeywordMapping::Kind::kValue, "gene", "gid"));
  // Best mapping should be the declared gid column, not the abstract.
  EXPECT_EQ(ms[0].column, "gid");
  EXPECT_TRUE(ms[0].exact_value);
}

TEST_F(KeywordEngineTest, MapKeywordTextIndexContainment) {
  const auto ms = engine_->MapKeyword("expression");
  EXPECT_TRUE(HasMapping(ms, KeywordMapping::Kind::kValue, "publication",
                         "abstract"));
  for (const auto& m : ms) {
    if (m.table == "publication") {
      EXPECT_FALSE(m.exact_value);
    }
  }
}

TEST_F(KeywordEngineTest, MapKeywordUnknownWordEmpty) {
  EXPECT_TRUE(engine_->MapKeyword("zzzzqqq").empty());
}

TEST_F(KeywordEngineTest, MappingsRespectCap) {
  engine_->params().max_mappings_per_keyword = 1;
  EXPECT_LE(engine_->MapKeyword("JW0014").size(), 1u);
}

TEST_F(KeywordEngineTest, MappingsRespectThreshold) {
  engine_->params().min_mapping_score = 0.95;
  // Pattern-based value mapping scores ~0.9 + unique boost; threshold cuts
  // the text-index mapping but keeps the strong one.
  const auto ms = engine_->MapKeyword("JW0014");
  for (const auto& m : ms) EXPECT_GE(m.score, 0.95);
}

TEST_F(KeywordEngineTest, CompileProducesValueSql) {
  const auto plan = engine_->CompileToSql({{"gene", "JW0013"}, 1.0, ""});
  bool has_gid_eq = false;
  for (const auto& sql : plan) {
    if (sql.query.table == "gene" && sql.query.predicates.size() == 1 &&
        sql.query.predicates[0].column == "gid" &&
        sql.query.predicates[0].op == CompareOp::kEq) {
      has_gid_eq = true;
      EXPECT_GT(sql.confidence, 0.8);
    }
  }
  EXPECT_TRUE(has_gid_eq);
}

TEST_F(KeywordEngineTest, TableContextBoostsConfidence) {
  const auto with_context = engine_->CompileToSql({{"gene", "JW0013"}, 1.0, ""});
  const auto without = engine_->CompileToSql({{"JW0013"}, 1.0, ""});
  double conf_with = 0, conf_without = 0;
  for (const auto& sql : with_context) {
    if (sql.query.table == "gene") conf_with = std::max(conf_with, sql.confidence);
  }
  for (const auto& sql : without) {
    if (sql.query.table == "gene") conf_without = std::max(conf_without, sql.confidence);
  }
  EXPECT_GT(conf_with, conf_without);
}

TEST_F(KeywordEngineTest, ComboSqlForDeclaredColumnPairs) {
  const auto plan =
      engine_->CompileToSql({{"protein", "Actin", "kinase"}, 1.0, ""});
  bool has_combo = false;
  for (const auto& sql : plan) {
    if (sql.query.table == "protein" && sql.query.predicates.size() == 2) {
      has_combo = true;
    }
  }
  EXPECT_TRUE(has_combo);
}

TEST_F(KeywordEngineTest, CompileDeduplicatesStatements) {
  // The same keyword twice must not produce duplicate SQL.
  const auto plan = engine_->CompileToSql({{"JW0013", "JW0013"}, 1.0, ""});
  std::set<std::string> keys;
  for (const auto& sql : plan) {
    EXPECT_TRUE(keys.insert(sql.CanonicalKey()).second);
  }
}

TEST_F(KeywordEngineTest, SearchFindsGeneByIdAndName) {
  auto hits = *engine_->Search({{"gene", "JW0014"}, 1.0, ""});
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].tuple.table_id, gene_->id());
  EXPECT_EQ(hits[0].tuple.row, 1u);

  hits = *engine_->Search({{"gene", "grpC"}, 1.0, ""});
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].tuple.row, 0u);
}

TEST_F(KeywordEngineTest, SearchComboIdentifiesProtein) {
  const auto hits = *engine_->Search({{"protein", "Actin", "kinase"}, 1.0, ""});
  ASSERT_FALSE(hits.empty());
  // The kinase Actin (row 0) must rank above the receptor Actin (row 1):
  // only it satisfies the two-column combo statement.
  EXPECT_EQ(hits[0].tuple.table_id, protein_->id());
  EXPECT_EQ(hits[0].tuple.row, 0u);
}

TEST_F(KeywordEngineTest, SearchHitsCarryQueryIndependentConfidences) {
  const auto hits = *engine_->Search({{"gene", "JW0014"}, 1.0, ""});
  for (const auto& h : hits) {
    EXPECT_GT(h.confidence, 0.0);
    EXPECT_LE(h.confidence, 1.0);
  }
}

TEST_F(KeywordEngineTest, SearchAlsoSurfacesPublicationMentions) {
  // "JW0014" appears in PUB1's abstract: the text-index mapping should
  // surface that publication, at lower confidence than the gene itself.
  const auto hits = *engine_->Search({{"JW0014"}, 1.0, ""});
  bool gene_hit = false, pub_hit = false;
  double gene_conf = 0, pub_conf = 0;
  for (const auto& h : hits) {
    if (h.tuple.table_id == gene_->id()) {
      gene_hit = true;
      gene_conf = h.confidence;
    }
    if (h.tuple.table_id == pub_->id()) {
      pub_hit = true;
      pub_conf = h.confidence;
    }
  }
  EXPECT_TRUE(gene_hit);
  EXPECT_TRUE(pub_hit);
  EXPECT_GT(gene_conf, pub_conf);
}

TEST_F(KeywordEngineTest, MiniDbRestrictsSearch) {
  MiniDb mini;
  mini.Add({gene_->id(), 0});  // only grpC's row allowed
  const auto hits = *engine_->Search({{"gene", "JW0014"}, 1.0, ""}, &mini);
  for (const auto& h : hits) {
    EXPECT_TRUE(mini.Contains(h.tuple));
  }
  // JW0014 is row 1, outside the mini DB: no gene hits at all.
  EXPECT_TRUE(hits.empty());
}

TEST_F(KeywordEngineTest, MiniDbAllowsContainedRows) {
  MiniDb mini;
  mini.Add({gene_->id(), 1});
  const auto hits = *engine_->Search({{"gene", "JW0014"}, 1.0, ""}, &mini);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].tuple.row, 1u);
}

TEST_F(KeywordEngineTest, FkExpansionAddsNeighbors) {
  // Wire a FK from protein to gene and enable expansion.
  Catalog catalog2;
  Table* gene = *catalog2.CreateTable(
      "gene", Schema({{"gid", DataType::kString, true}}));
  Table* protein = *catalog2.CreateTable(
      "protein", Schema({{"pid", DataType::kString, true},
                         {"gene_gid", DataType::kString}}));
  ASSERT_TRUE(gene->Insert({Value("JW0001")}).ok());
  ASSERT_TRUE(protein->Insert({Value("P00001"), Value("JW0001")}).ok());
  ASSERT_TRUE(catalog2.AddForeignKey("protein", "gene_gid", "gene", "gid").ok());
  NebulaMeta meta2;
  ASSERT_TRUE(meta2.AddConcept("Gene", "gene", {{"gid"}}).ok());
  ASSERT_TRUE(meta2.SetColumnPattern("gene", "gid", "JW[0-9]{4}").ok());

  KeywordSearchParams params;
  params.fk_expansion = true;
  KeywordSearchEngine engine(&catalog2, &meta2, params);
  const auto hits = *engine.Search({{"JW0001"}, 1.0, ""});
  bool protein_hit = false;
  double gene_conf = 0, protein_conf = 0;
  for (const auto& h : hits) {
    if (h.tuple.table_id == protein->id()) {
      protein_hit = true;
      protein_conf = h.confidence;
    } else {
      gene_conf = h.confidence;
    }
  }
  EXPECT_TRUE(protein_hit);
  EXPECT_LT(protein_conf, gene_conf);  // decayed
}

TEST_F(KeywordEngineTest, MergeHitsKeepsMaxPerTuple) {
  const TupleId t{0, 0};
  const auto merged = KeywordSearchEngine::MergeHits(
      {{{t, 0.3}}, {{t, 0.8}}, {{{1, 1}, 0.5}}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].confidence, 0.8);
  EXPECT_EQ(merged[0].tuple, t);
}

TEST_F(KeywordEngineTest, MergeHitsSortedByConfidenceThenTuple) {
  const auto merged = KeywordSearchEngine::MergeHits(
      {{{{0, 2}, 0.5}, {{0, 1}, 0.5}, {{0, 3}, 0.9}}});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].tuple.row, 3u);
  EXPECT_EQ(merged[1].tuple.row, 1u);
  EXPECT_EQ(merged[2].tuple.row, 2u);
}

TEST_F(KeywordEngineTest, StatsAccumulate) {
  engine_->ResetStats();
  ASSERT_TRUE(engine_->Search({{"gene", "JW0014"}, 1.0, ""}).ok());
  EXPECT_GT(engine_->stats().index_lookups, 0u);
}

TEST_F(KeywordEngineTest, ConstSearchOverwritesReusedStats) {
  // Regression: the const out-param paths must OVERWRITE `*stats`. When
  // they accumulated instead, a caller reusing one ExecStats across calls
  // and folding each result with AccumulateStats double-folded every
  // earlier call's counters.
  const KeywordQuery query{{"gene", "JW0014"}, 1.0, ""};

  ExecStats once;
  ASSERT_TRUE(engine_->Search(query, nullptr, &once).ok());
  ASSERT_GT(once.index_lookups, 0u);

  // Same query twice through the same (never Reset) ExecStats, folding
  // after each call — exactly the usage the overwrite contract protects.
  engine_->ResetStats();
  ExecStats reused;
  ASSERT_TRUE(engine_->Search(query, nullptr, &reused).ok());
  engine_->AccumulateStats(reused);
  ASSERT_TRUE(engine_->Search(query, nullptr, &reused).ok());
  engine_->AccumulateStats(reused);
  EXPECT_EQ(reused.index_lookups, once.index_lookups);
  EXPECT_EQ(reused.rows_examined, once.rows_examined);
  EXPECT_EQ(engine_->stats().index_lookups, 2 * once.index_lookups);
  EXPECT_EQ(engine_->stats().rows_examined, 2 * once.rows_examined);
}

TEST_F(KeywordEngineTest, ConstExecuteSqlOverwritesReusedStats) {
  const KeywordQuery query{{"gene", "JW0014"}, 1.0, ""};
  const auto plan = engine_->CompileToSql(query);
  ASSERT_FALSE(plan.empty());

  ExecStats once;
  ASSERT_TRUE(engine_->ExecuteSql(plan[0], nullptr, &once).ok());

  ExecStats reused;
  ASSERT_TRUE(engine_->ExecuteSql(plan[0], nullptr, &reused).ok());
  ASSERT_TRUE(engine_->ExecuteSql(plan[0], nullptr, &reused).ok());
  EXPECT_EQ(reused.rows_examined, once.rows_examined);
  EXPECT_EQ(reused.index_lookups, once.index_lookups);
}

TEST_F(KeywordEngineTest, MappingCacheYieldsIdenticalPlans) {
  const KeywordQuery q1{{"gene", "JW0013"}, 1.0, ""};
  const KeywordQuery q2{{"gene", "grpC"}, 1.0, ""};
  KeywordSearchEngine::MappingCache cache;
  const auto plain1 = engine_->CompileToSql(q1);
  const auto cached1 = engine_->CompileToSql(q1, &cache);
  const auto cached2 = engine_->CompileToSql(q2, &cache);  // reuses "gene"
  const auto plain2 = engine_->CompileToSql(q2);
  ASSERT_EQ(plain1.size(), cached1.size());
  for (size_t i = 0; i < plain1.size(); ++i) {
    EXPECT_EQ(plain1[i].CanonicalKey(), cached1[i].CanonicalKey());
    EXPECT_DOUBLE_EQ(plain1[i].confidence, cached1[i].confidence);
  }
  ASSERT_EQ(plain2.size(), cached2.size());
  for (size_t i = 0; i < plain2.size(); ++i) {
    EXPECT_EQ(plain2[i].CanonicalKey(), cached2[i].CanonicalKey());
  }
  // The cache holds one entry per distinct keyword.
  EXPECT_EQ(cache.size(), 3u);
}

TEST_F(KeywordEngineTest, ScanContainmentModeSameAnswersMoreWork) {
  KeywordSearchParams scan_params;
  scan_params.scan_containment = true;
  KeywordSearchEngine scan_engine(&catalog_, &meta_, scan_params);
  const KeywordQuery q{{"expression"}, 1.0, ""};
  const auto indexed = *engine_->Search(q);
  const auto scanned = *scan_engine.Search(q);
  ASSERT_EQ(indexed.size(), scanned.size());
  for (size_t i = 0; i < indexed.size(); ++i) {
    EXPECT_EQ(indexed[i].tuple, scanned[i].tuple);
    EXPECT_DOUBLE_EQ(indexed[i].confidence, scanned[i].confidence);
  }
  EXPECT_GT(scan_engine.stats().rows_examined,
            engine_->stats().rows_examined);
}

TEST_F(KeywordEngineTest, GeneratedSqlCanonicalKeyOrderInsensitive) {
  GeneratedSql a;
  a.query.table = "gene";
  a.query.predicates = {{"gid", CompareOp::kEq, Value("x")},
                        {"name", CompareOp::kEq, Value("y")}};
  GeneratedSql b;
  b.query.table = "GENE";
  b.query.predicates = {{"name", CompareOp::kEq, Value("y")},
                        {"gid", CompareOp::kEq, Value("x")}};
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

}  // namespace
}  // namespace nebula
