file(REMOVE_RECURSE
  "CMakeFiles/biocuration.dir/biocuration.cpp.o"
  "CMakeFiles/biocuration.dir/biocuration.cpp.o.d"
  "biocuration"
  "biocuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biocuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
