# Empty dependencies file for biocuration.
# This may be replaced when dependencies are built.
