# Empty dependencies file for nebula_shell.
# This may be replaced when dependencies are built.
