file(REMOVE_RECURSE
  "CMakeFiles/nebula_shell.dir/nebula_shell.cpp.o"
  "CMakeFiles/nebula_shell.dir/nebula_shell.cpp.o.d"
  "nebula_shell"
  "nebula_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
