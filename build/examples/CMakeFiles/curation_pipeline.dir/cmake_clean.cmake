file(REMOVE_RECURSE
  "CMakeFiles/curation_pipeline.dir/curation_pipeline.cpp.o"
  "CMakeFiles/curation_pipeline.dir/curation_pipeline.cpp.o.d"
  "curation_pipeline"
  "curation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
