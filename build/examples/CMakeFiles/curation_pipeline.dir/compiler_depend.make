# Empty compiler generated dependencies file for curation_pipeline.
# This may be replaced when dependencies are built.
