file(REMOVE_RECURSE
  "CMakeFiles/bounds_setting_test.dir/bounds_setting_test.cc.o"
  "CMakeFiles/bounds_setting_test.dir/bounds_setting_test.cc.o.d"
  "bounds_setting_test"
  "bounds_setting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_setting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
