file(REMOVE_RECURSE
  "CMakeFiles/context_adjust_test.dir/context_adjust_test.cc.o"
  "CMakeFiles/context_adjust_test.dir/context_adjust_test.cc.o.d"
  "context_adjust_test"
  "context_adjust_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_adjust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
