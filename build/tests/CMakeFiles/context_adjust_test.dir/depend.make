# Empty dependencies file for context_adjust_test.
# This may be replaced when dependencies are built.
