file(REMOVE_RECURSE
  "CMakeFiles/signature_maps_test.dir/signature_maps_test.cc.o"
  "CMakeFiles/signature_maps_test.dir/signature_maps_test.cc.o.d"
  "signature_maps_test"
  "signature_maps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_maps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
