# Empty dependencies file for signature_maps_test.
# This may be replaced when dependencies are built.
