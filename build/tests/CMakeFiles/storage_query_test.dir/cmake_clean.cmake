file(REMOVE_RECURSE
  "CMakeFiles/storage_query_test.dir/storage_query_test.cc.o"
  "CMakeFiles/storage_query_test.dir/storage_query_test.cc.o.d"
  "storage_query_test"
  "storage_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
