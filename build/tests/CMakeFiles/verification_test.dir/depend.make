# Empty dependencies file for verification_test.
# This may be replaced when dependencies are built.
