# Empty compiler generated dependencies file for verification_test.
# This may be replaced when dependencies are built.
