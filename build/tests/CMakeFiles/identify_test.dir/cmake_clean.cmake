file(REMOVE_RECURSE
  "CMakeFiles/identify_test.dir/identify_test.cc.o"
  "CMakeFiles/identify_test.dir/identify_test.cc.o.d"
  "identify_test"
  "identify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
