# Empty compiler generated dependencies file for identify_test.
# This may be replaced when dependencies are built.
