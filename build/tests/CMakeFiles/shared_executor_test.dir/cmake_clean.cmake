file(REMOVE_RECURSE
  "CMakeFiles/shared_executor_test.dir/shared_executor_test.cc.o"
  "CMakeFiles/shared_executor_test.dir/shared_executor_test.cc.o.d"
  "shared_executor_test"
  "shared_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
