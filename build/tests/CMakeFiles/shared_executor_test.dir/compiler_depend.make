# Empty compiler generated dependencies file for shared_executor_test.
# This may be replaced when dependencies are built.
