# Empty compiler generated dependencies file for focal_spreading_test.
# This may be replaced when dependencies are built.
