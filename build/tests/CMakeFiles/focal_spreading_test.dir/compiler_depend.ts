# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for focal_spreading_test.
