file(REMOVE_RECURSE
  "CMakeFiles/focal_spreading_test.dir/focal_spreading_test.cc.o"
  "CMakeFiles/focal_spreading_test.dir/focal_spreading_test.cc.o.d"
  "focal_spreading_test"
  "focal_spreading_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focal_spreading_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
