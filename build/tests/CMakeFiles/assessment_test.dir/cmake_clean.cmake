file(REMOVE_RECURSE
  "CMakeFiles/assessment_test.dir/assessment_test.cc.o"
  "CMakeFiles/assessment_test.dir/assessment_test.cc.o.d"
  "assessment_test"
  "assessment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assessment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
