# Empty compiler generated dependencies file for assessment_test.
# This may be replaced when dependencies are built.
