# Empty dependencies file for keyword_engine_test.
# This may be replaced when dependencies are built.
