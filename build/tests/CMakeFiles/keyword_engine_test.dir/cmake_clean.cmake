file(REMOVE_RECURSE
  "CMakeFiles/keyword_engine_test.dir/keyword_engine_test.cc.o"
  "CMakeFiles/keyword_engine_test.dir/keyword_engine_test.cc.o.d"
  "keyword_engine_test"
  "keyword_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyword_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
