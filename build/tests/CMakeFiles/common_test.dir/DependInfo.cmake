
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/nebula_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nebula_core.dir/DependInfo.cmake"
  "/root/repo/build/src/keyword/CMakeFiles/nebula_keyword.dir/DependInfo.cmake"
  "/root/repo/build/src/annotation/CMakeFiles/nebula_annotation.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/nebula_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nebula_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nebula_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nebula_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
