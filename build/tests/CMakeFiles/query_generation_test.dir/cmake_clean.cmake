file(REMOVE_RECURSE
  "CMakeFiles/query_generation_test.dir/query_generation_test.cc.o"
  "CMakeFiles/query_generation_test.dir/query_generation_test.cc.o.d"
  "query_generation_test"
  "query_generation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
