# Empty compiler generated dependencies file for query_generation_test.
# This may be replaced when dependencies are built.
