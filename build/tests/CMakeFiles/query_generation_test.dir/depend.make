# Empty dependencies file for query_generation_test.
# This may be replaced when dependencies are built.
