file(REMOVE_RECURSE
  "CMakeFiles/acg_test.dir/acg_test.cc.o"
  "CMakeFiles/acg_test.dir/acg_test.cc.o.d"
  "acg_test"
  "acg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
