# Empty dependencies file for acg_test.
# This may be replaced when dependencies are built.
