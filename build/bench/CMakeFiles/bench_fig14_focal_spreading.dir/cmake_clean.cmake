file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_focal_spreading.dir/bench_fig14_focal_spreading.cc.o"
  "CMakeFiles/bench_fig14_focal_spreading.dir/bench_fig14_focal_spreading.cc.o.d"
  "bench_fig14_focal_spreading"
  "bench_fig14_focal_spreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_focal_spreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
