# Empty dependencies file for bench_fig14_focal_spreading.
# This may be replaced when dependencies are built.
