file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_execution.dir/bench_fig12_execution.cc.o"
  "CMakeFiles/bench_fig12_execution.dir/bench_fig12_execution.cc.o.d"
  "bench_fig12_execution"
  "bench_fig12_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
