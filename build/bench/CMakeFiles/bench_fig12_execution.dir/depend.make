# Empty dependencies file for bench_fig12_execution.
# This may be replaced when dependencies are built.
