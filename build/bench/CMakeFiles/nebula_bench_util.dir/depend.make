# Empty dependencies file for nebula_bench_util.
# This may be replaced when dependencies are built.
