file(REMOVE_RECURSE
  "CMakeFiles/nebula_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/nebula_bench_util.dir/bench_util.cc.o.d"
  "libnebula_bench_util.a"
  "libnebula_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
