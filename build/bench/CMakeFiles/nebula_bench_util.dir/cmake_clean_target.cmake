file(REMOVE_RECURSE
  "libnebula_bench_util.a"
)
