file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_verification.dir/bench_fig15_verification.cc.o"
  "CMakeFiles/bench_fig15_verification.dir/bench_fig15_verification.cc.o.d"
  "bench_fig15_verification"
  "bench_fig15_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
