# Empty compiler generated dependencies file for nebula_meta.
# This may be replaced when dependencies are built.
