file(REMOVE_RECURSE
  "libnebula_meta.a"
)
