file(REMOVE_RECURSE
  "CMakeFiles/nebula_meta.dir/concept_learning.cc.o"
  "CMakeFiles/nebula_meta.dir/concept_learning.cc.o.d"
  "CMakeFiles/nebula_meta.dir/nebula_meta.cc.o"
  "CMakeFiles/nebula_meta.dir/nebula_meta.cc.o.d"
  "libnebula_meta.a"
  "libnebula_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
