# Empty dependencies file for nebula_storage.
# This may be replaced when dependencies are built.
