file(REMOVE_RECURSE
  "CMakeFiles/nebula_storage.dir/catalog.cc.o"
  "CMakeFiles/nebula_storage.dir/catalog.cc.o.d"
  "CMakeFiles/nebula_storage.dir/query.cc.o"
  "CMakeFiles/nebula_storage.dir/query.cc.o.d"
  "CMakeFiles/nebula_storage.dir/schema.cc.o"
  "CMakeFiles/nebula_storage.dir/schema.cc.o.d"
  "CMakeFiles/nebula_storage.dir/table.cc.o"
  "CMakeFiles/nebula_storage.dir/table.cc.o.d"
  "CMakeFiles/nebula_storage.dir/value.cc.o"
  "CMakeFiles/nebula_storage.dir/value.cc.o.d"
  "libnebula_storage.a"
  "libnebula_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
