file(REMOVE_RECURSE
  "libnebula_storage.a"
)
