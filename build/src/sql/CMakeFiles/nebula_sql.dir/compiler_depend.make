# Empty compiler generated dependencies file for nebula_sql.
# This may be replaced when dependencies are built.
