file(REMOVE_RECURSE
  "libnebula_sql.a"
)
