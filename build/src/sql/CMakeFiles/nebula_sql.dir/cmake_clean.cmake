file(REMOVE_RECURSE
  "CMakeFiles/nebula_sql.dir/lexer.cc.o"
  "CMakeFiles/nebula_sql.dir/lexer.cc.o.d"
  "CMakeFiles/nebula_sql.dir/parser.cc.o"
  "CMakeFiles/nebula_sql.dir/parser.cc.o.d"
  "CMakeFiles/nebula_sql.dir/session.cc.o"
  "CMakeFiles/nebula_sql.dir/session.cc.o.d"
  "libnebula_sql.a"
  "libnebula_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
