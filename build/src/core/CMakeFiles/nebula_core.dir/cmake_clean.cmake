file(REMOVE_RECURSE
  "CMakeFiles/nebula_core.dir/acg.cc.o"
  "CMakeFiles/nebula_core.dir/acg.cc.o.d"
  "CMakeFiles/nebula_core.dir/assessment.cc.o"
  "CMakeFiles/nebula_core.dir/assessment.cc.o.d"
  "CMakeFiles/nebula_core.dir/bounds_setting.cc.o"
  "CMakeFiles/nebula_core.dir/bounds_setting.cc.o.d"
  "CMakeFiles/nebula_core.dir/context_adjust.cc.o"
  "CMakeFiles/nebula_core.dir/context_adjust.cc.o.d"
  "CMakeFiles/nebula_core.dir/engine.cc.o"
  "CMakeFiles/nebula_core.dir/engine.cc.o.d"
  "CMakeFiles/nebula_core.dir/focal_spreading.cc.o"
  "CMakeFiles/nebula_core.dir/focal_spreading.cc.o.d"
  "CMakeFiles/nebula_core.dir/identify.cc.o"
  "CMakeFiles/nebula_core.dir/identify.cc.o.d"
  "CMakeFiles/nebula_core.dir/query_generation.cc.o"
  "CMakeFiles/nebula_core.dir/query_generation.cc.o.d"
  "CMakeFiles/nebula_core.dir/signature_maps.cc.o"
  "CMakeFiles/nebula_core.dir/signature_maps.cc.o.d"
  "CMakeFiles/nebula_core.dir/spam.cc.o"
  "CMakeFiles/nebula_core.dir/spam.cc.o.d"
  "CMakeFiles/nebula_core.dir/verification.cc.o"
  "CMakeFiles/nebula_core.dir/verification.cc.o.d"
  "libnebula_core.a"
  "libnebula_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
