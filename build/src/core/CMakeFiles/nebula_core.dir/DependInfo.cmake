
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acg.cc" "src/core/CMakeFiles/nebula_core.dir/acg.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/acg.cc.o.d"
  "/root/repo/src/core/assessment.cc" "src/core/CMakeFiles/nebula_core.dir/assessment.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/assessment.cc.o.d"
  "/root/repo/src/core/bounds_setting.cc" "src/core/CMakeFiles/nebula_core.dir/bounds_setting.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/bounds_setting.cc.o.d"
  "/root/repo/src/core/context_adjust.cc" "src/core/CMakeFiles/nebula_core.dir/context_adjust.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/context_adjust.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/nebula_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/engine.cc.o.d"
  "/root/repo/src/core/focal_spreading.cc" "src/core/CMakeFiles/nebula_core.dir/focal_spreading.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/focal_spreading.cc.o.d"
  "/root/repo/src/core/identify.cc" "src/core/CMakeFiles/nebula_core.dir/identify.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/identify.cc.o.d"
  "/root/repo/src/core/query_generation.cc" "src/core/CMakeFiles/nebula_core.dir/query_generation.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/query_generation.cc.o.d"
  "/root/repo/src/core/signature_maps.cc" "src/core/CMakeFiles/nebula_core.dir/signature_maps.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/signature_maps.cc.o.d"
  "/root/repo/src/core/spam.cc" "src/core/CMakeFiles/nebula_core.dir/spam.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/spam.cc.o.d"
  "/root/repo/src/core/verification.cc" "src/core/CMakeFiles/nebula_core.dir/verification.cc.o" "gcc" "src/core/CMakeFiles/nebula_core.dir/verification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nebula_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nebula_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nebula_text.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/nebula_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/annotation/CMakeFiles/nebula_annotation.dir/DependInfo.cmake"
  "/root/repo/build/src/keyword/CMakeFiles/nebula_keyword.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
