file(REMOVE_RECURSE
  "libnebula_core.a"
)
