# Empty compiler generated dependencies file for nebula_core.
# This may be replaced when dependencies are built.
