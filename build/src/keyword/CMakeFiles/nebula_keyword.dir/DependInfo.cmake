
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keyword/engine.cc" "src/keyword/CMakeFiles/nebula_keyword.dir/engine.cc.o" "gcc" "src/keyword/CMakeFiles/nebula_keyword.dir/engine.cc.o.d"
  "/root/repo/src/keyword/shared_executor.cc" "src/keyword/CMakeFiles/nebula_keyword.dir/shared_executor.cc.o" "gcc" "src/keyword/CMakeFiles/nebula_keyword.dir/shared_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nebula_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nebula_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/nebula_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nebula_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
