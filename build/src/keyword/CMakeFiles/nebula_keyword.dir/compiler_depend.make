# Empty compiler generated dependencies file for nebula_keyword.
# This may be replaced when dependencies are built.
