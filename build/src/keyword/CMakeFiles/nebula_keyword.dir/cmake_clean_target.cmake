file(REMOVE_RECURSE
  "libnebula_keyword.a"
)
