file(REMOVE_RECURSE
  "CMakeFiles/nebula_keyword.dir/engine.cc.o"
  "CMakeFiles/nebula_keyword.dir/engine.cc.o.d"
  "CMakeFiles/nebula_keyword.dir/shared_executor.cc.o"
  "CMakeFiles/nebula_keyword.dir/shared_executor.cc.o.d"
  "libnebula_keyword.a"
  "libnebula_keyword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
