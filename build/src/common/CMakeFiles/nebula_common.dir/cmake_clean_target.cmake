file(REMOVE_RECURSE
  "libnebula_common.a"
)
