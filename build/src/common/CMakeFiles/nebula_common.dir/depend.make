# Empty dependencies file for nebula_common.
# This may be replaced when dependencies are built.
