file(REMOVE_RECURSE
  "CMakeFiles/nebula_common.dir/logging.cc.o"
  "CMakeFiles/nebula_common.dir/logging.cc.o.d"
  "CMakeFiles/nebula_common.dir/random.cc.o"
  "CMakeFiles/nebula_common.dir/random.cc.o.d"
  "CMakeFiles/nebula_common.dir/status.cc.o"
  "CMakeFiles/nebula_common.dir/status.cc.o.d"
  "CMakeFiles/nebula_common.dir/string_util.cc.o"
  "CMakeFiles/nebula_common.dir/string_util.cc.o.d"
  "libnebula_common.a"
  "libnebula_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
