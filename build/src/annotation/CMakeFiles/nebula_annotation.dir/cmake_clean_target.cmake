file(REMOVE_RECURSE
  "libnebula_annotation.a"
)
