# Empty compiler generated dependencies file for nebula_annotation.
# This may be replaced when dependencies are built.
