file(REMOVE_RECURSE
  "CMakeFiles/nebula_annotation.dir/annotation_store.cc.o"
  "CMakeFiles/nebula_annotation.dir/annotation_store.cc.o.d"
  "CMakeFiles/nebula_annotation.dir/auto_attach.cc.o"
  "CMakeFiles/nebula_annotation.dir/auto_attach.cc.o.d"
  "CMakeFiles/nebula_annotation.dir/quality.cc.o"
  "CMakeFiles/nebula_annotation.dir/quality.cc.o.d"
  "CMakeFiles/nebula_annotation.dir/serialize.cc.o"
  "CMakeFiles/nebula_annotation.dir/serialize.cc.o.d"
  "libnebula_annotation.a"
  "libnebula_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
