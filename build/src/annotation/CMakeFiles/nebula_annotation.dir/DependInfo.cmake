
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annotation/annotation_store.cc" "src/annotation/CMakeFiles/nebula_annotation.dir/annotation_store.cc.o" "gcc" "src/annotation/CMakeFiles/nebula_annotation.dir/annotation_store.cc.o.d"
  "/root/repo/src/annotation/auto_attach.cc" "src/annotation/CMakeFiles/nebula_annotation.dir/auto_attach.cc.o" "gcc" "src/annotation/CMakeFiles/nebula_annotation.dir/auto_attach.cc.o.d"
  "/root/repo/src/annotation/quality.cc" "src/annotation/CMakeFiles/nebula_annotation.dir/quality.cc.o" "gcc" "src/annotation/CMakeFiles/nebula_annotation.dir/quality.cc.o.d"
  "/root/repo/src/annotation/serialize.cc" "src/annotation/CMakeFiles/nebula_annotation.dir/serialize.cc.o" "gcc" "src/annotation/CMakeFiles/nebula_annotation.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nebula_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nebula_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
