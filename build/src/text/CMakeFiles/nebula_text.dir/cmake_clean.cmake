file(REMOVE_RECURSE
  "CMakeFiles/nebula_text.dir/lexicon.cc.o"
  "CMakeFiles/nebula_text.dir/lexicon.cc.o.d"
  "CMakeFiles/nebula_text.dir/pattern.cc.o"
  "CMakeFiles/nebula_text.dir/pattern.cc.o.d"
  "CMakeFiles/nebula_text.dir/similarity.cc.o"
  "CMakeFiles/nebula_text.dir/similarity.cc.o.d"
  "CMakeFiles/nebula_text.dir/stopwords.cc.o"
  "CMakeFiles/nebula_text.dir/stopwords.cc.o.d"
  "CMakeFiles/nebula_text.dir/tokenizer.cc.o"
  "CMakeFiles/nebula_text.dir/tokenizer.cc.o.d"
  "libnebula_text.a"
  "libnebula_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
