file(REMOVE_RECURSE
  "libnebula_text.a"
)
