# Empty compiler generated dependencies file for nebula_text.
# This may be replaced when dependencies are built.
