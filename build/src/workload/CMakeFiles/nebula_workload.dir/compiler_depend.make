# Empty compiler generated dependencies file for nebula_workload.
# This may be replaced when dependencies are built.
