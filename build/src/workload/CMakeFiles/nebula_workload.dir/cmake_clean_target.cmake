file(REMOVE_RECURSE
  "libnebula_workload.a"
)
