file(REMOVE_RECURSE
  "CMakeFiles/nebula_workload.dir/generator.cc.o"
  "CMakeFiles/nebula_workload.dir/generator.cc.o.d"
  "CMakeFiles/nebula_workload.dir/oracle.cc.o"
  "CMakeFiles/nebula_workload.dir/oracle.cc.o.d"
  "CMakeFiles/nebula_workload.dir/vocab.cc.o"
  "CMakeFiles/nebula_workload.dir/vocab.cc.o.d"
  "libnebula_workload.a"
  "libnebula_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
