file(REMOVE_RECURSE
  "CMakeFiles/nebula_datagen.dir/nebula_datagen.cpp.o"
  "CMakeFiles/nebula_datagen.dir/nebula_datagen.cpp.o.d"
  "nebula_datagen"
  "nebula_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebula_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
