# Empty dependencies file for nebula_datagen.
# This may be replaced when dependencies are built.
