/// Biocuration scenario (the paper's headline use case): an
/// under-annotated curated database is repaired by Nebula.
///
/// The example generates the synthetic UniProt-like dataset, holds out
/// its workload annotations, and inserts them with only ONE of their true
/// attachments (exactly how a scientist like Bob attaches an article to a
/// single gene and never links the rest). It then measures the database
/// quality (Equations 1 & 2: F_N / F_P) before Nebula, after Nebula's
/// automatic decisions, and after an expert clears the pending queue —
/// demonstrating the reduction of the false-negative ratio that motivates
/// the whole system.

#include <cstdio>

#include "annotation/quality.h"
#include "core/engine.h"
#include "workload/generator.h"
#include "workload/oracle.h"

using namespace nebula;

int main() {
  std::printf("Generating the curated biological database...\n");
  auto ds_result = GenerateBioDataset(DatasetSpec::Small());
  if (!ds_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  BioDataset& ds = **ds_result;
  std::printf("  %llu tuples, %zu curated annotations, %zu attachments\n",
              static_cast<unsigned long long>(ds.catalog.TotalRows()),
              ds.store.num_annotations(), ds.store.num_attachments());

  NebulaConfig config;
  config.generation.epsilon = 0.6;
  config.bounds = {0.40, 0.86};  // see the Fig. 15 bounds-tuning bench
  NebulaEngine engine(&ds.catalog, &ds.store, &ds.meta, config);
  engine.RebuildAcg();

  // The ideal edge set: corpus edges + every workload annotation's full
  // ground truth (ids assigned in insertion order).
  EdgeSet ideal = ds.CorpusIdealEdges();
  AnnotationId next_id = ds.store.num_annotations();
  for (const auto& wa : ds.workload.annotations) {
    for (const TupleId& t : wa.ideal_tuples) ideal.Add(next_id, t);
    ++next_id;
  }

  // Insert each held-out annotation with a single focal attachment.
  std::printf("\nInserting %zu new annotations (1 manual attachment "
              "each)...\n",
              ds.workload.annotations.size());
  size_t auto_accepted = 0;
  size_t pending = 0;
  for (const auto& wa : ds.workload.annotations) {
    auto report =
        engine.InsertAnnotation(wa.text, {wa.ideal_tuples.front()}, "user");
    if (!report.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    auto_accepted += report->verification.auto_accepted;
    pending += report->verification.pending;
  }

  const DatabaseQuality after_auto = MeasureQuality(ds.store, ideal);
  std::printf("  Nebula auto-accepted %zu attachments, queued %zu for "
              "experts\n",
              auto_accepted, pending);
  std::printf("  database quality now: F_N=%.3f  F_P=%.3f\n",
              after_auto.false_negative_ratio,
              after_auto.false_positive_ratio);

  // What the database would have looked like WITHOUT Nebula: only the
  // single manual attachment per annotation. (Annotations attached once
  // out of an average of ~5 ideal links.)
  size_t workload_ideal_edges = 0;
  for (const auto& wa : ds.workload.annotations) {
    workload_ideal_edges += wa.ideal_tuples.size();
  }
  const double fn_without =
      static_cast<double>(workload_ideal_edges -
                          ds.workload.annotations.size()) /
      static_cast<double>(ideal.size());
  std::printf("\nWithout Nebula, F_N would be %.3f (the %zu new "
              "annotations contribute %zu missing links).\n",
              fn_without, ds.workload.annotations.size(),
              workload_ideal_edges - ds.workload.annotations.size());

  // An expert (simulated from ground truth, as in the paper's §8.2)
  // clears the pending verification queue via the extended SQL command.
  std::printf("\nExpert clearing the pending queue...\n");
  OracleExpert expert(&ideal);
  const OracleOutcome outcome = expert.ProcessPending(&engine.verification());
  std::printf("  VERIFY ATTACHMENT x%zu, REJECT ATTACHMENT x%zu\n",
              outcome.accepted, outcome.rejected);

  const DatabaseQuality final_quality = MeasureQuality(ds.store, ideal);
  std::printf("\nFinal database quality: F_N=%.3f  F_P=%.3f\n",
              final_quality.false_negative_ratio,
              final_quality.false_positive_ratio);
  std::printf("Nebula recovered %.0f%% of the missing attachments.\n",
              100.0 *
                  (1.0 - final_quality.false_negative_ratio /
                             (fn_without > 0 ? fn_without : 1.0)));
  return 0;
}
