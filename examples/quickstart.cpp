/// Quickstart: the paper's Figure 1 scenario in ~100 lines.
///
/// Builds a small gene/protein database, registers the NebulaMeta
/// knowledge (ConceptRefs, value patterns), and inserts Alice's comment —
/// "From the exp, it seems this gene is correlated to JW0014 of grpC" —
/// attached to gene JW0019. Nebula analyzes the comment, discovers the
/// embedded references to JW0014 and grpC (the name of gene JW0013), and
/// raises verification tasks for the missing attachments.

#include <cstdio>

#include "annotation/annotation_store.h"
#include "core/engine.h"
#include "meta/nebula_meta.h"
#include "storage/catalog.h"

using namespace nebula;

namespace {

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::nebula::Status _st = (expr);                                \
    if (!_st.ok()) {                                              \
      std::fprintf(stderr, "FATAL: %s\n", _st.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (0)

}  // namespace

int main() {
  // --- The database of Figure 1 -------------------------------------
  Catalog catalog;
  auto gene_result = catalog.CreateTable(
      "gene", Schema({{"gid", DataType::kString, /*unique=*/true},
                      {"name", DataType::kString, /*unique=*/true},
                      {"length", DataType::kInt64},
                      {"seq", DataType::kString},
                      {"family", DataType::kString}}));
  if (!gene_result.ok()) return 1;
  Table* gene = *gene_result;

  struct Row {
    const char* gid;
    const char* name;
    int64_t length;
    const char* seq;
    const char* family;
  };
  const Row rows[] = {
      {"JW0013", "grpC", 1130, "TGCT", "F1"},
      {"JW0014", "groP", 1916, "GGTT", "F6"},
      {"JW0015", "insL", 1112, "GGCT", "F1"},
      {"JW0018", "nhaA", 1166, "CGTT", "F1"},
      {"JW0019", "yaaB", 905, "TGTG", "F3"},
      {"JW0012", "yaaI", 404, "TTCG", "F1"},
      {"JW0027", "namE", 658, "GTTT", "F4"},
  };
  for (const Row& r : rows) {
    auto inserted = gene->Insert({Value(r.gid), Value(r.name),
                                  Value(r.length), Value(r.seq),
                                  Value(r.family)});
    if (!inserted.ok()) return 1;
  }

  // --- NebulaMeta: the ConceptRefs table of Figure 3 ----------------
  NebulaMeta meta;
  CHECK_OK(meta.AddConcept("Gene", "gene", {{"gid"}, {"name"}}));
  meta.AddColumnAlias("gene", "gid", "id");
  CHECK_OK(meta.SetColumnPattern("gene", "gid", "JW[0-9]{4}"));
  CHECK_OK(meta.SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]"));

  // --- The Nebula engine --------------------------------------------
  AnnotationStore store;
  NebulaConfig config;
  config.bounds = {0.30, 0.85};
  NebulaEngine engine(&catalog, &store, &meta, config);

  // Alice attaches her comment to gene JW0019 (row 4).
  const TupleId alices_gene{gene->id(), 4};
  auto report_result = engine.InsertAnnotation(
      "From the exp, it seems this gene is correlated to JW0014 of grpC",
      {alices_gene}, "alice");
  if (!report_result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 report_result.status().ToString().c_str());
    return 1;
  }
  const AnnotationReport& report = *report_result;

  std::printf("Alice's comment generated %zu keyword queries:\n",
              report.queries.size());
  for (const auto& q : report.queries) {
    std::printf("  [w=%.2f] %s\n", q.weight, q.ToString().c_str());
  }

  std::printf("\nDiscovered candidate tuples:\n");
  for (const auto& c : report.candidates) {
    const auto& row = gene->GetRow(c.tuple.row);
    std::printf("  gene %s (%s)  confidence=%.2f  evidence: ",
                row[0].AsString().c_str(), row[1].AsString().c_str(),
                c.confidence);
    for (const auto& e : c.evidence) std::printf("{%s} ", e.c_str());
    std::printf("\n");
  }

  std::printf("\nVerification outcome: %zu auto-accepted, %zu pending, "
              "%zu auto-rejected\n",
              report.verification.auto_accepted, report.verification.pending,
              report.verification.auto_rejected);

  // An expert reviews the pending queue through the extended SQL command.
  for (const VerificationTask* task : engine.verification().PendingTasks()) {
    std::printf("  pending v%llu -> gene row %llu (conf %.2f): VERIFY\n",
                static_cast<unsigned long long>(task->vid),
                static_cast<unsigned long long>(task->tuple.row),
                task->confidence);
    CHECK_OK(engine.verification().ExecuteCommand(
        "VERIFY ATTACHMENT " + std::to_string(task->vid) + ";"));
  }

  std::printf("\nAnnotation is now attached to %zu tuples (was 1).\n",
              store.AttachedTuples(report.annotation).size());
  return 0;
}
