/// Curation-pipeline lifecycle demo: streaming annotations through
/// Nebula's full machinery.
///
/// Shows the pieces the other examples do not: (1) annotation propagation
/// through query answers (the passive engine feature Nebula builds on),
/// (2) the ACG maturing as follow-up annotations stream in until it
/// reports itself stable (Def. 6.1), (3) the automatic switch from
/// full-database search to approximate focal-spreading once stability
/// holds, and (4) the hop-distance profile that guides the choice of K.

#include <cstdio>

#include "annotation/auto_attach.h"
#include "core/engine.h"
#include "storage/query.h"
#include "workload/generator.h"
#include "workload/oracle.h"

using namespace nebula;

int main() {
  DatasetSpec spec = DatasetSpec::Tiny();
  spec.num_publications = 900;
  auto ds_result = GenerateBioDataset(spec);
  if (!ds_result.ok()) return 1;
  BioDataset& ds = **ds_result;

  NebulaConfig config;
  config.bounds = {0.60, 0.86};
  config.enable_focal_spreading = true;  // gated on ACG stability
  config.acg_stability.batch_size = 40;
  config.acg_stability.mu = 0.9;
  config.spreading.selection = KSelection::kProfileDriven;
  config.spreading.desired_recall = 0.93;
  NebulaEngine engine(&ds.catalog, &ds.store, &ds.meta, config);
  engine.RebuildAcg();

  // ---- (0) Predicate-based auto-attachment rules ----------------------
  // The structured-rule facility of the passive engines [18, 25] (the
  // paper's Figure 1 "Rounded Flag"): the curator declares a predicate,
  // and both existing and future matching tuples get the annotation.
  AutoAttachRegistry rules(&ds.catalog, &ds.store);
  const AnnotationId flag = ds.store.AddAnnotation("Rounded Flag", "curator");
  auto rule_result = rules.AddRule(
      flag, {"gene", {{"family", CompareOp::kEq, Value("F1")}}});
  if (!rule_result.ok()) return 1;
  std::printf("Auto-attachment rule: 'Rounded Flag' ON gene WHERE family = "
              "'F1' -> flagged %zu existing genes\n",
              *rule_result);
  Table* gene_tbl = ds.catalog.GetTableById(ds.gene_table);
  auto new_gene = gene_tbl->Insert(
      {Value("JW99001"), Value("zzqQ"), Value(int64_t{800}), Value("ACGT"),
       Value("F1"), Value("ecoli")});
  if (new_gene.ok()) {
    auto fired = rules.OnInsert({gene_tbl->id(), *new_gene});
    std::printf("  inserted gene JW99001 (family F1): %zu rule%s fired on "
                "insert\n\n",
                fired.ok() ? *fired : 0,
                (fired.ok() && *fired == 1) ? "" : "s");
  }

  // ---- (1) Annotation propagation at query time ----------------------
  // "SELECT * FROM gene WHERE family = 'F1'" with annotations propagated
  // along the answer, the headline feature of the passive engine [18].
  QueryExecutor executor(&ds.catalog);
  const Table* gene = ds.catalog.GetTableById(ds.gene_table);
  SelectQuery query{"gene", {{"family", CompareOp::kEq, Value("F1")}}};
  auto rows = executor.Execute(query);
  if (!rows.ok()) return 1;
  std::vector<TupleId> answer;
  for (Table::RowId r : *rows) answer.push_back({gene->id(), r});
  size_t with_annotations = 0;
  size_t propagated = 0;
  for (const auto& [tuple, annotations] : ds.store.Propagate(answer)) {
    if (!annotations.empty()) ++with_annotations;
    propagated += annotations.size();
  }
  std::printf("Query '%s'\n  returned %zu genes; %zu carry annotations "
              "(%zu propagated in total).\n",
              query.ToSqlString().c_str(), answer.size(), with_annotations,
              propagated);

  // ---- (2) Mature the ACG until it reports stable ---------------------
  // A graph is stable (Def. 6.1) when new annotations mostly re-connect
  // already-connected tuples. Follow-up comments on well-studied tuples
  // — the bread and butter of a mature curated database — do exactly
  // that: stream a wave of them and watch the stability flip.
  std::printf("\nStreaming follow-up comments on already-annotated "
              "tuples...\n");
  const Table* gene_table = ds.catalog.GetTableById(ds.gene_table);
  size_t followups = 0;
  for (AnnotationId a = 0; a < ds.store.num_annotations() &&
                           followups < 2 * config.acg_stability.batch_size;
       ++a) {
    // Re-annotate pairs of genes that an existing publication already
    // co-cites.
    std::vector<TupleId> genes;
    for (const TupleId& t : ds.store.AttachedTuples(a, true)) {
      if (t.table_id == ds.gene_table) genes.push_back(t);
    }
    if (genes.size() < 2) continue;
    const std::string name0 = gene_table->GetCell(genes[0].row, 1).AsString();
    const std::string name1 = gene_table->GetCell(genes[1].row, 1).AsString();
    const std::string comment =
        "follow-up: gene " + name0 + " again correlated with gene " + name1;
    auto report = engine.InsertAnnotation(comment, {genes[0]}, "curator");
    if (!report.ok()) return 1;
    ++followups;
  }
  std::printf("  streamed %zu follow-ups; ACG stable=%s (%zu nodes, %zu "
              "edges)\n",
              followups, engine.acg().stable() ? "yes" : "no",
              engine.acg().num_nodes(), engine.acg().num_edges());

  // ---- (3) New annotations now take the focal-spreading path ----------
  std::printf("\nInserting the held-out workload annotations...\n");
  size_t streamed = 0;
  size_t approximated = 0;
  size_t mini_sizes = 0;
  for (const auto& wa : ds.workload.annotations) {
    auto report =
        engine.InsertAnnotation(wa.text, {wa.ideal_tuples.front()}, "flow");
    if (!report.ok()) return 1;
    ++streamed;
    if (report->mode == SearchMode::kFocalSpreading) {
      ++approximated;
      mini_sizes += report->mini_db_size;
    }
  }
  std::printf("  %zu of %zu used approximate focal-spreading search "
              "(avg miniDB %zu tuples vs %llu rows in the full DB)\n",
              approximated, streamed,
              approximated ? mini_sizes / approximated : 0,
              static_cast<unsigned long long>(ds.catalog.TotalRows()));

  // ---- (4) The hop-distance profile ----------------------------------
  std::printf("\nHop-distance profile accumulated from accepted "
              "attachments:\n");
  uint64_t total = 0;
  for (uint64_t v : engine.acg().profile()) total += v;
  uint64_t cumulative = 0;
  for (size_t k = 0; k + 1 < engine.acg().profile().size(); ++k) {
    if (engine.acg().profile()[k] == 0) continue;
    cumulative += engine.acg().profile()[k];
    std::printf("  <=%zu hops: %5.1f%%\n", k,
                total ? 100.0 * cumulative / total : 0.0);
  }
  std::printf("profile-driven K for %.0f%% recall: %zu\n",
              100 * config.spreading.desired_recall,
              engine.acg().SelectK(config.spreading.desired_recall));

  // Pending tasks remain for the experts.
  std::printf("\n%zu verification tasks pending for domain experts "
              "(VERIFY/REJECT ATTACHMENT <vid>).\n",
              engine.verification().PendingTasks().size());
  return 0;
}
