/// nebula_shell — an interactive extended-SQL shell over the Nebula
/// engine, pre-loaded with the Figure 1 database.
///
/// Supported statements (case-insensitive; ';' optional):
///   SELECT [cols | *] FROM t [WHERE c op v [AND ...]] [WITH ANNOTATIONS]
///   INSERT INTO t VALUES (v1, ...)
///   ANNOTATE 'text' ON t WHERE c op v [BY 'author']
///   RULE 'text' ON t WHERE c op v [BY 'author']
///   VERIFY ATTACHMENT <vid>   |   REJECT ATTACHMENT <vid>
///   SHOW PENDING              |   SHOW TABLES
///
/// Run interactively, or pipe a script:
///   echo "SHOW TABLES" | ./build/examples/nebula_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "sql/session.h"

using namespace nebula;

namespace {

/// Loads the Figure 1 gene table and its NebulaMeta knowledge.
Status LoadFigure1(Catalog* catalog, NebulaMeta* meta) {
  NEBULA_ASSIGN_OR_RETURN(
      Table * gene,
      catalog->CreateTable(
          "gene", Schema({{"gid", DataType::kString, /*unique=*/true},
                          {"name", DataType::kString, /*unique=*/true},
                          {"length", DataType::kInt64},
                          {"seq", DataType::kString},
                          {"family", DataType::kString}})));
  struct Row {
    const char* gid;
    const char* name;
    int64_t length;
    const char* seq;
    const char* family;
  };
  const Row rows[] = {
      {"JW0013", "grpC", 1130, "TGCT", "F1"},
      {"JW0014", "groP", 1916, "GGTT", "F6"},
      {"JW0015", "insL", 1112, "GGCT", "F1"},
      {"JW0018", "nhaA", 1166, "CGTT", "F1"},
      {"JW0019", "yaaB", 905, "TGTG", "F3"},
      {"JW0012", "yaaI", 404, "TTCG", "F1"},
      {"JW0027", "namE", 658, "GTTT", "F4"},
  };
  for (const Row& r : rows) {
    NEBULA_RETURN_NOT_OK(gene->Insert({Value(r.gid), Value(r.name),
                                       Value(r.length), Value(r.seq),
                                       Value(r.family)})
                             .status());
  }
  NEBULA_RETURN_NOT_OK(meta->AddConcept("Gene", "gene", {{"gid"}, {"name"}}));
  meta->AddColumnAlias("gene", "gid", "id");
  NEBULA_RETURN_NOT_OK(meta->SetColumnPattern("gene", "gid", "JW[0-9]{4}"));
  NEBULA_RETURN_NOT_OK(
      meta->SetColumnPattern("gene", "name", "[a-z]{3}[A-Z]"));
  return Status::OK();
}

}  // namespace

int main() {
  Catalog catalog;
  NebulaMeta meta;
  AnnotationStore store;
  if (Status st = LoadFigure1(&catalog, &meta); !st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  NebulaConfig config;
  config.bounds = {0.30, 0.85};
  NebulaEngine engine(&catalog, &store, &meta, config);
  sql::SqlSession session(&engine);

  std::printf("Nebula shell — Figure 1 database loaded. Try:\n"
              "  SELECT * FROM gene WHERE family = 'F1'\n"
              "  ANNOTATE 'correlated to JW0014 of gene grpC' ON gene "
              "WHERE gid = 'JW0019' BY 'alice'\n"
              "  SHOW PENDING\n\n");

  std::string line;
  while (true) {
    std::printf("nebula> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "quit" || line == "exit" || line == "\\q") break;
    auto result = session.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString().c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
